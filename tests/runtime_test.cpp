// Tests for the hetsim::runtime subsystem: phase DAG validation, the
// threaded virtual-time executor, straggler detection / re-planning
// math, end-to-end jobs, and trace determinism.
#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "check/ranked_mutex.h"
#include "common/error.h"
#include "core/mining_workload.h"
#include "data/generators.h"
#include "energy/estimator.h"
#include "runtime/dag.h"
#include "runtime/executor.h"
#include "runtime/replan.h"
#include "runtime/runtime.h"
#include "runtime/trace.h"

namespace hetsim::runtime {
namespace {

// ---- helpers ---------------------------------------------------------------

/// Workload with exactly linear cost: `units_per_record` metered work per
/// record, no kvstore traffic. The estimator's fit is exact, so any
/// straggler the runtime sees is the one a test injected.
class LinearWorkload final : public core::Workload {
 public:
  explicit LinearWorkload(double units_per_record = 500.0)
      : units_per_record_(units_per_record) {}

  [[nodiscard]] std::string name() const override { return "linear"; }
  [[nodiscard]] partition::Layout preferred_layout() const override {
    return partition::Layout::kRepresentative;
  }
  void reset(std::size_t, std::uint32_t) override {}
  void run(cluster::NodeContext& ctx, const data::Dataset&,
           std::span<const std::uint32_t> indices) override {
    ctx.meter().add(units_per_record_ * static_cast<double>(indices.size()));
  }

 private:
  double units_per_record_;
};

data::Dataset small_corpus(std::size_t docs = 400, std::uint64_t seed = 7) {
  data::TextCorpusConfig cfg;
  cfg.num_docs = docs;
  cfg.seed = seed;
  return data::generate_text_corpus(cfg, "corpus");
}

JobSpec fast_spec() {
  JobSpec spec;
  spec.sampling.min_records = 20;
  spec.sampling.steps = 3;
  spec.kmodes.num_strata = 8;
  spec.kmodes.max_iterations = 4;
  spec.sketch.num_hashes = 16;
  return spec;
}

// ---- PhaseDag --------------------------------------------------------------

/// Phase body that completes cleanly, for wiring-shape tests.
std::function<PhaseResult(const PhaseAttempt&)> counting_body(int& slot,
                                                              int& ran) {
  return [&slot, &ran](const PhaseAttempt&) {
    slot = ran++;
    return PhaseResult::ok();
  };
}

TEST(PhaseDag, TopologicalOrderRespectsDependencies) {
  PhaseDag dag;
  int ran = 0;
  int a_at = -1, b_at = -1, c_at = -1;
  dag.add({"c", PhaseKind::kExecute, {"b"}, counting_body(c_at, ran)});
  dag.add({"a", PhaseKind::kIngest, {}, counting_body(a_at, ran)});
  dag.add({"b", PhaseKind::kStratify, {"a"}, counting_body(b_at, ran)});
  TraceRecorder trace;
  const DagReport report = dag.run(trace, [] { return 0.0; });
  EXPECT_LT(a_at, b_at);
  EXPECT_LT(b_at, c_at);
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(report.status, JobStatus::kOk);
  EXPECT_EQ(report.phase_retries, 0u);
  EXPECT_TRUE(report.failed_phase.empty());
  // One span per phase, categorized by kind; clean phases carry no
  // args (byte-compatible with pre-PhaseResult traces).
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].category, "phase.ingest");
  EXPECT_TRUE(trace.events()[0].args.empty());
}

TEST(PhaseDag, DeclarationOrderBreaksTies) {
  PhaseDag dag;
  std::vector<std::string> order;
  const auto note = [&order](std::string name) {
    return [&order, name](const PhaseAttempt&) {
      order.push_back(name);
      return PhaseResult::ok();
    };
  };
  dag.add({"y", PhaseKind::kExecute, {}, note("y")});
  dag.add({"x", PhaseKind::kExecute, {}, note("x")});
  TraceRecorder trace;
  (void)dag.run(trace, [] { return 0.0; });
  EXPECT_EQ(order, (std::vector<std::string>{"y", "x"}));
}

TEST(PhaseDag, TransientFailureRetriesUpToAttemptCap) {
  PhaseDag dag;
  std::vector<std::size_t> attempts_seen;
  std::vector<bool> last_seen;
  Phase ph;
  ph.name = "flaky";
  ph.kind = PhaseKind::kIngest;
  ph.max_attempts = 3;
  ph.body = [&](const PhaseAttempt& at) {
    attempts_seen.push_back(at.attempt);
    last_seen.push_back(at.last);
    return at.attempt < 2 ? PhaseResult::transient("not yet")
                          : PhaseResult::ok();
  };
  dag.add(std::move(ph));
  TraceRecorder trace;
  const DagReport report = dag.run(trace, [] { return 0.0; });
  EXPECT_EQ(report.status, JobStatus::kOk);
  EXPECT_EQ(report.phase_retries, 2u);
  EXPECT_TRUE(report.failed_phase.empty());
  EXPECT_EQ(attempts_seen, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(last_seen, (std::vector<bool>{false, false, true}));
  EXPECT_EQ(trace.count("phase-retry"), 2u);
}

TEST(PhaseDag, ExhaustedPhaseSkipsDependentsAndFloorsStatus) {
  PhaseDag dag;
  int downstream_runs = 0;
  int independent_runs = 0;
  Phase doomed;
  doomed.name = "doomed";
  doomed.kind = PhaseKind::kIngest;
  doomed.max_attempts = 2;
  doomed.on_exhausted = JobStatus::kDataUnavailable;
  doomed.body = [](const PhaseAttempt&) {
    return PhaseResult::transient("store down");
  };
  dag.add(std::move(doomed));
  dag.add({"dependent", PhaseKind::kExecute, {"doomed"},
           [&](const PhaseAttempt&) {
             ++downstream_runs;
             return PhaseResult::ok();
           }});
  dag.add({"independent", PhaseKind::kForecast, {},
           [&](const PhaseAttempt&) {
             ++independent_runs;
             return PhaseResult::ok();
           }});
  TraceRecorder trace;
  const DagReport report = dag.run(trace, [] { return 0.0; });
  EXPECT_EQ(report.status, JobStatus::kDataUnavailable);
  EXPECT_EQ(report.failed_phase, "doomed");
  EXPECT_EQ(report.failure_detail, "store down");
  EXPECT_EQ(downstream_runs, 0);
  EXPECT_EQ(independent_runs, 1);
  EXPECT_EQ(trace.count("phase-failed"), 1u);
  EXPECT_EQ(trace.count("phase-skipped"), 1u);
}

TEST(PhaseDag, RetryBudgetDeniesFurtherAttempts) {
  PhaseDag dag;
  double now = 0.0;
  std::size_t runs = 0;
  Phase ph;
  ph.name = "slow";
  ph.kind = PhaseKind::kPartition;
  ph.max_attempts = 10;
  ph.retry_budget_s = 5.0;
  ph.on_exhausted = JobStatus::kDegraded;
  ph.body = [&](const PhaseAttempt&) {
    ++runs;
    now += 3.0;  // each attempt burns 3 virtual seconds
    return PhaseResult::transient("still failing");
  };
  dag.add(std::move(ph));
  TraceRecorder trace;
  const DagReport report = dag.run(trace, [&] { return now; });
  // Attempt 1 ends at 3s (< 5s budget: retry granted), attempt 2 ends
  // at 6s (budget spent: no third attempt).
  EXPECT_EQ(runs, 2u);
  EXPECT_EQ(report.status, JobStatus::kDegraded);
  EXPECT_EQ(report.failed_phase, "slow");
}

TEST(PhaseDag, DegradedFloorAggregatesAcrossPhases) {
  PhaseDag dag;
  dag.add({"a", PhaseKind::kIngest, {}, [](const PhaseAttempt&) {
             return PhaseResult::degraded("replica fallback");
           }});
  dag.add({"b", PhaseKind::kExecute, {"a"}, [](const PhaseAttempt&) {
             return PhaseResult::ok();
           }});
  TraceRecorder trace;
  const DagReport report = dag.run(trace, [] { return 0.0; });
  EXPECT_EQ(report.status, JobStatus::kDegraded);
  EXPECT_TRUE(report.failed_phase.empty());
}

TEST(PhaseDag, EscapedTypedExceptionIsContainedAsTransient) {
  PhaseDag dag;
  std::size_t runs = 0;
  Phase ph;
  ph.name = "thrower";
  ph.kind = PhaseKind::kExecute;
  ph.max_attempts = 2;
  ph.on_exhausted = JobStatus::kDataUnavailable;
  ph.body = [&](const PhaseAttempt&) -> PhaseResult {
    ++runs;
    throw common::Error("helper deep in the phase threw");
  };
  dag.add(std::move(ph));
  TraceRecorder trace;
  DagReport report;
  EXPECT_NO_THROW(report = dag.run(trace, [] { return 0.0; }));
  EXPECT_EQ(runs, 2u);
  EXPECT_EQ(report.status, JobStatus::kDataUnavailable);
  EXPECT_EQ(report.failed_phase, "thrower");
}

TEST(PhaseDag, WorseJobStatusIsMaxBySeverity) {
  EXPECT_EQ(worse_job_status(JobStatus::kOk, JobStatus::kDegraded),
            JobStatus::kDegraded);
  EXPECT_EQ(worse_job_status(JobStatus::kDataUnavailable, JobStatus::kOk),
            JobStatus::kDataUnavailable);
  EXPECT_EQ(worse_job_status(JobStatus::kDegraded, JobStatus::kDegraded),
            JobStatus::kDegraded);
}

TEST(PhaseDag, RejectsCycle) {
  PhaseDag dag;
  dag.add({"a", PhaseKind::kExecute, {"b"}, nullptr});
  dag.add({"b", PhaseKind::kExecute, {"a"}, nullptr});
  EXPECT_THROW((void)dag.topological_order(), common::ConfigError);
}

TEST(PhaseDag, RejectsMissingDependency) {
  PhaseDag dag;
  dag.add({"a", PhaseKind::kExecute, {"ghost"}, nullptr});
  EXPECT_THROW((void)dag.topological_order(), common::ConfigError);
}

TEST(PhaseDag, RejectsDuplicateName) {
  PhaseDag dag;
  dag.add({"a", PhaseKind::kExecute, {}, nullptr});
  EXPECT_THROW(dag.add({"a", PhaseKind::kExecute, {}, nullptr}),
               common::ConfigError);
}

TEST(PhaseDag, RejectsSelfDependency) {
  PhaseDag dag;
  dag.add({"a", PhaseKind::kExecute, {"a"}, nullptr});
  EXPECT_THROW((void)dag.topological_order(), common::ConfigError);
}

// ---- TraceRecorder ---------------------------------------------------------

TEST(TraceRecorder, ChromeTraceShapeAndCounts) {
  TraceRecorder trace;
  trace.name_lane(0, "node 0");
  trace.add_span("work", "exec", 0, 1.0, 0.5, {{"records", 10.0}});
  trace.add_instant("straggler", "replan", 0, 1.5);
  trace.add_counter("remaining", TraceRecorder::kRuntimeLane, 1.5, 42.0);
  EXPECT_EQ(trace.count("work"), 1u);
  EXPECT_EQ(trace.count("straggler"), 1u);
  const std::string doc = trace.chrome_trace_json();
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  // Span timestamps are microseconds (1.0 s -> 1000000 us).
  EXPECT_NE(doc.find("\"ts\":1000000"), std::string::npos);
}

// ---- PhaseExecutor ---------------------------------------------------------

TEST(PhaseExecutor, ZeroSizeQueueNodeFinishesIdle) {
  cluster::Cluster cluster(cluster::standard_cluster(2));
  std::vector<std::uint32_t> work(100);
  std::iota(work.begin(), work.end(), 0u);
  PhaseExecutor executor(
      cluster, {work, {}},
      [](cluster::NodeContext& ctx, std::span<const std::uint32_t> indices) {
        ctx.meter().add(1e4 * static_cast<double>(indices.size()));
      },
      {.chunk_records = 16});
  const ExecutorReport report = executor.run();
  EXPECT_EQ(report.per_node[0].records_done, 100u);
  EXPECT_EQ(report.per_node[1].records_done, 0u);
  EXPECT_EQ(report.per_node[1].busy_s(), 0.0);
  // 100 * 1e4 units at speed 4, base rate 1e6 -> 0.25 s.
  EXPECT_NEAR(report.makespan_s, 0.25, 1e-9);
}

TEST(PhaseExecutor, EmptyEverythingCompletes) {
  cluster::Cluster cluster(cluster::standard_cluster(3));
  PhaseExecutor executor(
      cluster, {{}, {}, {}},
      [](cluster::NodeContext&, std::span<const std::uint32_t>) {},
      {.chunk_records = 8});
  const ExecutorReport report = executor.run();
  EXPECT_EQ(report.makespan_s, 0.0);
}

TEST(PhaseExecutor, DeterministicAcrossRunsAndProcessesEverything) {
  const auto run_once = [] {
    cluster::Cluster cluster(cluster::standard_cluster(4));
    std::vector<std::vector<std::uint32_t>> queues(4);
    for (std::uint32_t i = 0; i < 200; ++i) queues[i % 4].push_back(i);
    PhaseExecutor executor(
        cluster, queues,
        [](cluster::NodeContext& ctx, std::span<const std::uint32_t> indices) {
          ctx.meter().add(5e3 * static_cast<double>(indices.size()));
        },
        {.chunk_records = 10, .seed = 33});
    return executor.run();
  };
  const ExecutorReport a = run_once();
  const ExecutorReport b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  std::size_t total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.per_node[i].records_done, b.per_node[i].records_done);
    EXPECT_DOUBLE_EQ(a.per_node[i].compute_s, b.per_node[i].compute_s);
    total += a.per_node[i].records_done;
  }
  EXPECT_EQ(total, 200u);
}

TEST(PhaseExecutor, SlowdownInflatesOnlyThatNode) {
  cluster::Cluster cluster(cluster::standard_cluster(2));
  std::vector<std::uint32_t> work(64);
  std::iota(work.begin(), work.end(), 0u);
  const auto runner = [](cluster::NodeContext& ctx,
                         std::span<const std::uint32_t> indices) {
    ctx.meter().add(1e4 * static_cast<double>(indices.size()));
  };
  PhaseExecutor plain(cluster, {work, work}, runner, {.chunk_records = 16});
  const ExecutorReport base = plain.run();
  cluster::Cluster cluster2(cluster::standard_cluster(2));
  PhaseExecutor slowed(cluster2, {work, work}, runner,
                       {.chunk_records = 16, .per_node_slowdown = {3.0, 1.0}});
  const ExecutorReport slow = slowed.run();
  EXPECT_NEAR(slow.per_node[0].compute_s, 3.0 * base.per_node[0].compute_s,
              1e-12);
  EXPECT_NEAR(slow.per_node[1].compute_s, base.per_node[1].compute_s, 1e-12);
}

TEST(PhaseExecutor, CheckpointMigrationIsHonored) {
  cluster::Cluster cluster(cluster::standard_cluster(2));
  std::vector<std::uint32_t> work(90);
  std::iota(work.begin(), work.end(), 0u);
  bool moved = false;
  PhaseExecutor executor(
      cluster, {work, {}},
      [](cluster::NodeContext& ctx, std::span<const std::uint32_t> indices) {
        ctx.meter().add(1e4 * static_cast<double>(indices.size()));
      },
      {.chunk_records = 10});
  executor.set_checkpoint([&](std::uint32_t) {
    if (moved) return;
    moved = true;
    const std::vector<std::uint32_t> taken = executor.take_from_tail(0, 40);
    EXPECT_EQ(taken.size(), 40u);
    executor.give(1, taken);
  });
  const ExecutorReport report = executor.run();
  EXPECT_EQ(report.per_node[0].records_done, 50u);
  EXPECT_EQ(report.per_node[1].records_done, 40u);
}

TEST(PhaseExecutor, ChunkAndCheckpointRunWithNoSchedulerLockHeld) {
  // Regression for the lock-blocking finding on the old executor: chunk
  // bodies and checkpoint callbacks used to run under the scheduler
  // mutex, so blocking kvstore/fabric traffic issued from either would
  // have executed with a RankedMutex held. They now run with the lock
  // released (the admission token keeps them serial); assert the
  // thread's held-lock set is empty at both callback boundaries.
  cluster::Cluster cluster(cluster::standard_cluster(2));
  std::vector<std::uint32_t> work(60);
  std::iota(work.begin(), work.end(), 0u);
  std::size_t chunks_seen = 0;
  std::size_t checkpoints_seen = 0;
  PhaseExecutor executor(
      cluster, {work, work},
      [&](cluster::NodeContext& ctx, std::span<const std::uint32_t> indices) {
        EXPECT_EQ(check::RankedMutex::held_by_this_thread(), 0u);
        ++chunks_seen;
        ctx.meter().add(1e4 * static_cast<double>(indices.size()));
      },
      {.chunk_records = 10});
  executor.set_checkpoint([&](std::uint32_t) {
    EXPECT_EQ(check::RankedMutex::held_by_this_thread(), 0u);
    ++checkpoints_seen;
  });
  const ExecutorReport report = executor.run();
  EXPECT_EQ(report.per_node[0].records_done, 60u);
  EXPECT_EQ(report.per_node[1].records_done, 60u);
  EXPECT_EQ(chunks_seen, 12u);
  EXPECT_EQ(checkpoints_seen, 12u);
}

// ---- straggler / re-plan math ----------------------------------------------

TEST(Replan, DetectsOnlyDeviatingNodes) {
  std::vector<optimize::NodeModel> models{{.slope = 1e-3, .intercept = 0.0},
                                          {.slope = 1e-3, .intercept = 0.0}};
  std::vector<NodeObservation> obs{{100, 0.25, 100},   // 2.5e-3 s/rec
                                   {100, 0.11, 100}};  // 1.1e-3 s/rec
  StragglerPolicy policy;
  policy.deviation_factor = 1.5;
  policy.min_observed_records = 16;
  const auto stragglers = detect_stragglers(models, obs, policy);
  ASSERT_EQ(stragglers.size(), 1u);
  EXPECT_EQ(stragglers[0], 0u);
}

TEST(Replan, TooFewObservedRecordsIsNotFlagged) {
  std::vector<optimize::NodeModel> models{{.slope = 1e-3}};
  std::vector<NodeObservation> obs{{4, 4.0, 100}};  // wildly slow but 4 recs
  StragglerPolicy policy;
  policy.min_observed_records = 16;
  EXPECT_TRUE(detect_stragglers(models, obs, policy).empty());
}

TEST(Replan, RefitUsesObservedSlopeAndDropsIntercept) {
  std::vector<optimize::NodeModel> models{
      {.slope = 1e-3, .intercept = 0.5, .dirty_rate = 80.0},
      {.slope = 2e-3, .intercept = 0.1, .dirty_rate = -5.0}};
  std::vector<NodeObservation> obs{{200, 0.5, 100},  // observed 2.5e-3
                                   {2, 1.0, 100}};   // too few: keep 2e-3
  const auto refit = refit_models(models, obs, 16);
  EXPECT_NEAR(refit[0].slope, 2.5e-3, 1e-12);
  EXPECT_EQ(refit[0].intercept, 0.0);
  EXPECT_EQ(refit[0].dirty_rate, 80.0);
  EXPECT_NEAR(refit[1].slope, 2e-3, 1e-12);
}

TEST(Replan, RemainingConservedAndShiftedOffStraggler) {
  std::vector<optimize::NodeModel> refit{{.slope = 4e-3},  // straggler
                                         {.slope = 1e-3},
                                         {.slope = 1e-3}};
  std::vector<NodeObservation> obs{{50, 0.2, 300}, {50, 0.05, 300},
                                   {50, 0.05, 300}};
  const auto target = replan_remaining(refit, obs, 1.0);
  EXPECT_EQ(std::accumulate(target.begin(), target.end(), std::size_t{0}),
            900u);
  // The slow node should end up with well under an equal share.
  EXPECT_LT(target[0], 200u);
}

TEST(Replan, MigrationPlanMatchesDeltasExactly) {
  const std::vector<std::size_t> current{300, 300, 300};
  const std::vector<std::size_t> target{100, 450, 350};
  const auto steps = plan_migrations(current, target);
  std::vector<std::size_t> after = current;
  for (const auto& s : steps) {
    ASSERT_GE(after[s.from], s.count);
    after[s.from] -= s.count;
    after[s.to] += s.count;
  }
  EXPECT_EQ(after, target);
}

TEST(Replan, NoOpWhenTargetsMatch) {
  const std::vector<std::size_t> sizes{10, 20, 30};
  EXPECT_TRUE(plan_migrations(sizes, sizes).empty());
}

// ---- JobRuntime end to end -------------------------------------------------

TEST(JobRuntime, ProcessesEveryRecordWithoutReplanWhenModelsHold) {
  cluster::Cluster cluster(cluster::standard_cluster(4));
  const auto energy = energy::GreenEnergyEstimator::standard(72);
  LinearWorkload workload;
  const data::Dataset dataset = small_corpus();
  JobRuntime runtime(cluster, energy, fast_spec());
  const JobSummary summary = runtime.run(dataset, workload);
  EXPECT_EQ(summary.records, dataset.size());
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
  EXPECT_EQ(summary.replans, 0u);
  EXPECT_EQ(summary.migrated_records, 0u);
  EXPECT_GT(summary.makespan_s, 0.0);
  EXPECT_GT(summary.setup_time_s, 0.0);
  EXPECT_GT(summary.total_energy_j(), 0.0);
  // Phase spans present in the trace, in pipeline order.
  for (const char* phase :
       {"ingest", "stratify", "estimate", "optimize", "partition", "execute"}) {
    EXPECT_EQ(runtime.trace().count(phase), 1u) << phase;
  }
}

TEST(JobRuntime, SingleNodeClusterCannotReplan) {
  cluster::Cluster cluster(cluster::standard_cluster(1));
  const auto energy = energy::GreenEnergyEstimator::standard(72);
  LinearWorkload workload;
  const data::Dataset dataset = small_corpus(200);
  JobSpec spec = fast_spec();
  spec.per_node_slowdown = {3.0};  // badly wrong model, nowhere to shed load
  JobRuntime runtime(cluster, energy, spec);
  const JobSummary summary = runtime.run(dataset, workload);
  EXPECT_EQ(summary.replans, 0u);
  EXPECT_EQ(summary.migrated_records, 0u);
  EXPECT_EQ(summary.processed[0], dataset.size());
}

TEST(JobRuntime, InjectedStragglerTriggersReplanAndConservesRecords) {
  cluster::Cluster cluster(cluster::standard_cluster(4));
  const auto energy = energy::GreenEnergyEstimator::standard(72);
  LinearWorkload workload;
  const data::Dataset dataset = small_corpus();
  JobSpec spec = fast_spec();
  spec.per_node_slowdown = {2.5, 1.0, 1.0, 1.0};
  JobRuntime runtime(cluster, energy, spec);
  const JobSummary summary = runtime.run(dataset, workload);
  EXPECT_GE(summary.replans, 1u);
  EXPECT_GE(summary.stragglers_detected, 1u);
  EXPECT_GT(summary.migrated_records, 0u);
  EXPECT_GT(summary.migrated_bytes, 0.0);
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
  EXPECT_GE(runtime.trace().count("straggler"), 1u);
  EXPECT_GE(runtime.trace().count("replan"), 1u);
  EXPECT_GE(runtime.trace().count("migrate"), 1u);
}

TEST(JobRuntime, ReplanningBeatsStaticPlanUnderTwoXSlopeError) {
  const data::Dataset dataset = small_corpus();
  const auto run_with = [&](bool enable_replan) {
    cluster::Cluster cluster(cluster::standard_cluster(4));
    const auto energy = energy::GreenEnergyEstimator::standard(72);
    LinearWorkload workload;
    JobSpec spec = fast_spec();
    spec.enable_replan = enable_replan;
    spec.per_node_slowdown = {2.5, 1.0, 1.0, 1.0};
    JobRuntime runtime(cluster, energy, spec);
    return runtime.run(dataset, workload);
  };
  const JobSummary fixed = run_with(false);
  const JobSummary replanned = run_with(true);
  EXPECT_EQ(fixed.replans, 0u);
  EXPECT_GE(replanned.replans, 1u);
  EXPECT_LT(replanned.makespan_s, fixed.makespan_s);
}

TEST(JobRuntime, TraceIsByteIdenticalAcrossSameSeedRuns) {
  const data::Dataset dataset = small_corpus(300);
  const auto trace_once = [&] {
    cluster::Cluster cluster(cluster::standard_cluster(4));
    const auto energy = energy::GreenEnergyEstimator::standard(72);
    LinearWorkload workload;
    JobSpec spec = fast_spec();
    spec.per_node_slowdown = {2.0, 1.0, 1.0, 1.0};
    spec.seed = 99;
    JobRuntime runtime(cluster, energy, spec);
    const JobSummary summary = runtime.run(dataset, workload);
    return runtime.trace().chrome_trace_json() + "\n" + summary_json(summary);
  };
  const std::string a = trace_once();
  const std::string b = trace_once();
  EXPECT_EQ(a, b);
}

TEST(JobRuntime, MiningJobKeepsSonQualityUnderChunkedExecution) {
  // SON completeness holds for any partitioning, including the runtime's
  // chunked execution: the candidate union over chunks is a superset of
  // the globally frequent patterns, and the global count phase is exact.
  const data::Dataset dataset = small_corpus(300, 21);
  const mining::AprioriConfig cfg{.min_support = 0.1, .max_pattern_length = 2};

  cluster::Cluster cluster(cluster::standard_cluster(4));
  const auto energy = energy::GreenEnergyEstimator::standard(72);
  core::PatternMiningWorkload workload(cfg);
  JobRuntime runtime(cluster, energy, fast_spec());
  const JobSummary summary = runtime.run(dataset, workload);

  std::vector<data::ItemSet> txns;
  for (const auto& r : dataset.records) txns.push_back(r.items);
  const mining::MiningResult direct = mining::apriori(txns, cfg);
  EXPECT_EQ(static_cast<std::size_t>(summary.quality),
            direct.frequent.size());
  EXPECT_EQ(runtime.trace().count("global"), 1u);
}

TEST(JobRuntime, SummaryJsonIsWellFormedEnough) {
  JobSummary s;
  s.job = "j";
  s.workload = "w";
  s.initial_sizes = {1, 2};
  s.processed = {2, 1};
  const std::string doc = summary_json(s);
  EXPECT_NE(doc.find("\"job\":\"j\""), std::string::npos);
  EXPECT_NE(doc.find("\"initial_sizes\":[1,2]"), std::string::npos);
  EXPECT_NE(doc.find("\"processed\":[2,1]"), std::string::npos);
}

TEST(JobRuntime, RejectsBadSpecs) {
  cluster::Cluster cluster(cluster::standard_cluster(2));
  const auto energy = energy::GreenEnergyEstimator::standard(72);
  JobSpec bad_alpha;
  bad_alpha.alpha = 1.5;
  EXPECT_THROW(JobRuntime(cluster, energy, bad_alpha), common::ConfigError);
  JobSpec bad_slowdown;
  bad_slowdown.per_node_slowdown = {1.0};  // 1 entry, 2 nodes
  EXPECT_THROW(JobRuntime(cluster, energy, bad_slowdown), common::ConfigError);
}

}  // namespace
}  // namespace hetsim::runtime

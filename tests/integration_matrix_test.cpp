// Integration matrix: every workload kind crossed with every strategy,
// asserting the invariants that must hold for ANY (workload, strategy)
// combination — exact record conservation, non-negative energy split,
// quality present, Het-Aware no slower than the Stratified baseline,
// and JSON serializability of each report.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "core/compression_workload.h"
#include "core/framework.h"
#include "core/mining_workload.h"
#include "core/report_io.h"
#include "core/subtree_workload.h"
#include "data/generators.h"

namespace hetsim::core {
namespace {

struct MatrixCase {
  const char* name;
  data::Dataset (*make_dataset)();
  std::unique_ptr<Workload> (*make_workload)();
};

data::Dataset text_dataset() {
  return data::generate_text_corpus(data::rcv1_like(0.25), "matrix-text");
}
data::Dataset tree_dataset() {
  return data::generate_tree_corpus(data::swissprot_like(0.4), "matrix-tree");
}
data::Dataset graph_dataset() {
  return data::generate_graph_corpus(data::uk_like(0.12), "matrix-graph");
}

std::unique_ptr<Workload> apriori_workload() {
  return std::make_unique<PatternMiningWorkload>(
      mining::AprioriConfig{.min_support = 0.08, .max_pattern_length = 3});
}
std::unique_ptr<Workload> subtree_workload() {
  return std::make_unique<SubtreeMiningWorkload>(
      mining::TreeMinerConfig{.min_support = 0.08, .max_pattern_nodes = 2});
}
std::unique_ptr<Workload> webgraph_workload() {
  return std::make_unique<CompressionWorkload>(
      CompressionWorkload::Algorithm::kWebGraph);
}
std::unique_ptr<Workload> lz77_workload() {
  return std::make_unique<CompressionWorkload>(
      CompressionWorkload::Algorithm::kLz77);
}
std::unique_ptr<Workload> deflate_workload() {
  return std::make_unique<CompressionWorkload>(
      CompressionWorkload::Algorithm::kDeflate);
}

class IntegrationMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(IntegrationMatrix, AllStrategiesSatisfyInvariants) {
  const MatrixCase& c = GetParam();
  const data::Dataset ds = c.make_dataset();
  const std::unique_ptr<Workload> workload = c.make_workload();

  cluster::Cluster cluster(cluster::standard_cluster(8));
  const energy::GreenEnergyEstimator energy =
      energy::GreenEnergyEstimator::standard(72);
  FrameworkConfig cfg;
  cfg.sketch.num_hashes = 32;
  cfg.kmodes.num_strata = 12;
  cfg.kmodes.max_iterations = 8;
  cfg.sampling.steps = 4;
  cfg.sampling.min_fraction = 0.02;
  cfg.sampling.max_fraction = 0.10;
  cfg.sampling.min_records = 30;
  cfg.normalized_alpha = true;
  cfg.energy_alpha = 0.7;
  ParetoFramework framework(cluster, energy, cfg);
  framework.prepare(ds, *workload);

  double stratified_time = 0.0;
  double het_time = 0.0;
  for (const Strategy strategy :
       {Strategy::kRandom, Strategy::kStratified, Strategy::kHetAware,
        Strategy::kHetEnergyAware}) {
    const JobReport r = framework.run(strategy, ds, *workload);
    SCOPED_TRACE(std::string(c.name) + " / " + strategy_name(strategy));
    // Record conservation.
    EXPECT_EQ(std::accumulate(r.partition_sizes.begin(),
                              r.partition_sizes.end(), std::size_t{0}),
              ds.size());
    // Time and energy sanity.
    EXPECT_GT(r.exec_time_s, 0.0);
    EXPECT_GT(r.load_time_s, 0.0);
    EXPECT_GE(r.dirty_energy_j, 0.0);
    EXPECT_GE(r.green_energy_j, 0.0);
    EXPECT_GT(r.total_work_units, 0.0);
    EXPECT_GT(r.quality, 0.0);
    // Reports serialize.
    const std::string json = to_json(r);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find(strategy_name(strategy)), std::string::npos);
    if (strategy == Strategy::kStratified) stratified_time = r.exec_time_s;
    if (strategy == Strategy::kHetAware) het_time = r.exec_time_s;
  }
  // The paper's core claim, required of every workload.
  EXPECT_LT(het_time, stratified_time);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IntegrationMatrix,
    ::testing::Values(
        MatrixCase{"apriori-text", &text_dataset, &apriori_workload},
        MatrixCase{"subtree-tree", &tree_dataset, &subtree_workload},
        MatrixCase{"webgraph-graph", &graph_dataset, &webgraph_workload},
        MatrixCase{"lz77-graph", &graph_dataset, &lz77_workload},
        MatrixCase{"deflate-graph", &graph_dataset, &deflate_workload}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hetsim::core

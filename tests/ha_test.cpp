// Tests for hetsim::ha — the sharded, replicated, self-healing kvstore
// layer: consistent-hash shard maps (determinism + bounded churn),
// IBF set reconciliation (round trips + undecodable overload), the
// liveness-aware router's seeded failover elections, the replicated
// client's write fan-out / read fallback for every transport status,
// crash -> checkpoint -> rejoin recovery on a NodeGroup, and the job
// runtime's replicated degraded mode driven by the example fault plan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/error.h"
#include "core/workload.h"
#include "data/generators.h"
#include "energy/estimator.h"
#include "fault/fault.h"
#include "ha/client.h"
#include "ha/group.h"
#include "ha/ibf.h"
#include "ha/recovery.h"
#include "ha/repair.h"
#include "ha/router.h"
#include "ha/shard_map.h"
#include "kvstore/client.h"
#include "kvstore/store.h"
#include "runtime/runtime.h"

namespace hetsim {
namespace {

using ha::HostId;
using ha::Ibf;
using ha::NodeGroup;
using ha::NodeGroupConfig;
using ha::ShardMap;
using ha::ShardMapConfig;
using ha::ShardRouter;

std::vector<HostId> iota_nodes(std::size_t n) {
  std::vector<HostId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), HostId{0});
  return nodes;
}

std::vector<std::string> sample_keys(std::size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) keys.push_back("key:" + std::to_string(i));
  return keys;
}

// ---- ShardMap --------------------------------------------------------------

TEST(ShardMap, SameInputsRouteIdentically) {
  const ShardMapConfig cfg{.virtual_nodes = 64, .replication = 3, .seed = 11};
  const ShardMap a(iota_nodes(5), cfg);
  const ShardMap b(iota_nodes(5), cfg);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  for (const std::string& key : sample_keys(500)) {
    EXPECT_EQ(a.replicas(key), b.replicas(key)) << key;
    EXPECT_EQ(a.preference(key), b.preference(key)) << key;
  }
}

TEST(ShardMap, ReplicasAreDistinctAndLedByThePrimary) {
  const ShardMap map(iota_nodes(5),
                     {.virtual_nodes = 64, .replication = 3, .seed = 1});
  for (const std::string& key : sample_keys(200)) {
    const std::vector<HostId> replicas = map.replicas(key);
    ASSERT_EQ(replicas.size(), 3u);
    EXPECT_EQ(replicas[0], map.primary(key));
    std::set<HostId> distinct(replicas.begin(), replicas.end());
    EXPECT_EQ(distinct.size(), replicas.size()) << key;
    const std::vector<HostId> pref = map.preference(key);
    ASSERT_EQ(pref.size(), 5u);
    EXPECT_TRUE(std::equal(replicas.begin(), replicas.end(), pref.begin()));
  }
}

TEST(ShardMap, ReplicationClampsToTheNodeCount) {
  const ShardMap map(iota_nodes(2),
                     {.virtual_nodes = 32, .replication = 4, .seed = 3});
  EXPECT_EQ(map.replicas("k").size(), 2u);
}

TEST(ShardMap, AddNodeMovesOnlyABoundedKeyFraction) {
  const ShardMapConfig cfg{.virtual_nodes = 64, .replication = 2, .seed = 5};
  ShardMap map(iota_nodes(6), cfg);
  const std::vector<std::string> keys = sample_keys(2000);
  std::vector<HostId> before;
  before.reserve(keys.size());
  for (const std::string& key : keys) before.push_back(map.primary(key));

  map.add_node(6);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const HostId now = map.primary(keys[i]);
    if (now != before[i]) {
      ++moved;
      // Consistent hashing only ever moves keys TO the new node.
      EXPECT_EQ(now, 6u) << keys[i];
    }
  }
  // Expected share is 1/7 ~ 14%; allow generous variance, but well under
  // the ~6/7 a naive mod-N rehash would move.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, keys.size() / 3);
}

TEST(ShardMap, RemoveNodeOnlyRehomesItsOwnKeys) {
  const ShardMapConfig cfg{.virtual_nodes = 64, .replication = 2, .seed = 5};
  ShardMap map(iota_nodes(6), cfg);
  const std::vector<std::string> keys = sample_keys(2000);
  std::vector<HostId> before;
  before.reserve(keys.size());
  for (const std::string& key : keys) before.push_back(map.primary(key));

  map.remove_node(2);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (before[i] != 2) {
      // Survivors keep their ring points, so untouched arcs stay put.
      EXPECT_EQ(map.primary(keys[i]), before[i]) << keys[i];
    } else {
      EXPECT_NE(map.primary(keys[i]), 2u) << keys[i];
    }
  }
}

TEST(ShardMap, AddThenRemoveRestoresTheOriginalPlacement) {
  const ShardMapConfig cfg{.virtual_nodes = 32, .replication = 2, .seed = 9};
  ShardMap map(iota_nodes(4), cfg);
  const std::uint64_t original = map.fingerprint();
  map.add_node(9);
  EXPECT_NE(map.fingerprint(), original);
  map.remove_node(9);
  EXPECT_EQ(map.fingerprint(), original);
}

TEST(ShardMap, RejectsBadMembershipAndConfig) {
  EXPECT_THROW(ShardMap({}, {}), common::ConfigError);
  EXPECT_THROW(ShardMap({1, 1}, {}), common::ConfigError);
  EXPECT_THROW(ShardMap(iota_nodes(2), {.virtual_nodes = 0}),
               common::ConfigError);
  EXPECT_THROW(ShardMap(iota_nodes(2), {.replication = 0}),
               common::ConfigError);
  ShardMap map(iota_nodes(2), {});
  EXPECT_THROW(map.add_node(1), common::ConfigError);
  EXPECT_THROW(map.remove_node(7), common::ConfigError);
  map.remove_node(1);
  EXPECT_THROW(map.remove_node(0), common::ConfigError);
}

TEST(ShardMap, ReplicaSetsCoverEveryNode) {
  const ShardMap map(iota_nodes(4),
                     {.virtual_nodes = 64, .replication = 2, .seed = 2});
  const std::vector<std::vector<HostId>> sets = map.replica_sets();
  ASSERT_EQ(sets.size(), 4u);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    EXPECT_FALSE(sets[i].empty()) << "node " << i;
    for (const HostId backer : sets[i]) EXPECT_NE(backer, i);
  }
}

using ShardMapDeathTest = ::testing::Test;

TEST(ShardMapDeathTest, ConflictingMapsDieLoudlyNotSilently) {
  const ShardMap a(iota_nodes(4), {.seed = 1});
  const ShardMap b(iota_nodes(4), {.seed = 2});
  EXPECT_DEATH(a.check_compatible(b), "conflicting shard maps");
  const ShardMap c(iota_nodes(5), {.seed = 1});
  EXPECT_DEATH(a.check_compatible(c), "conflicting shard maps");
}

// ---- Ibf -------------------------------------------------------------------

std::uint64_t item_of(std::uint64_t i) { return 0x9e3779b9u * (i + 1); }

TEST(Ibf, RejectsDegenerateGeometry) {
  EXPECT_THROW(Ibf(Ibf::kHashes - 1, 0), common::ConfigError);
}

TEST(Ibf, SubtractDecodeRecoversTheSymmetricDifference) {
  Ibf a(64, 7);
  Ibf b(64, 7);
  // 500 shared items dwarf the sketch size; only the difference counts.
  for (std::uint64_t i = 0; i < 500; ++i) {
    a.add(item_of(i));
    b.add(item_of(i));
  }
  const std::vector<std::uint64_t> only_a = {item_of(1000), item_of(1001)};
  const std::vector<std::uint64_t> only_b = {item_of(2000), item_of(2001),
                                             item_of(2002)};
  for (const std::uint64_t item : only_a) a.add(item);
  for (const std::uint64_t item : only_b) b.add(item);

  a.subtract(b);
  const Ibf::Decode diff = a.decode();
  ASSERT_TRUE(diff.ok);
  std::vector<std::uint64_t> expect_extra = only_a;
  std::vector<std::uint64_t> expect_missing = only_b;
  std::sort(expect_extra.begin(), expect_extra.end());
  std::sort(expect_missing.begin(), expect_missing.end());
  EXPECT_EQ(diff.extra, expect_extra);
  EXPECT_EQ(diff.missing, expect_missing);
}

TEST(Ibf, IdenticalSetsDecodeToEmpty) {
  Ibf a(16, 3);
  Ibf b(16, 3);
  for (std::uint64_t i = 0; i < 100; ++i) {
    a.add(item_of(i));
    b.add(item_of(i));
  }
  a.subtract(b);
  const Ibf::Decode diff = a.decode();
  EXPECT_TRUE(diff.ok);
  EXPECT_TRUE(diff.extra.empty());
  EXPECT_TRUE(diff.missing.empty());
}

TEST(Ibf, AddRemoveCancelsExactly) {
  Ibf a(32, 1);
  a.add(item_of(1));
  a.add(item_of(2));
  a.remove(item_of(1));
  Ibf b(32, 1);
  b.add(item_of(2));
  a.subtract(b);
  const Ibf::Decode diff = a.decode();
  EXPECT_TRUE(diff.ok);
  EXPECT_TRUE(diff.extra.empty());
  EXPECT_TRUE(diff.missing.empty());
}

TEST(Ibf, OverloadedSketchReportsUndecodable) {
  // A 16-cell sketch cannot peel a 200-item difference.
  Ibf a(16, 5);
  Ibf b(16, 5);
  for (std::uint64_t i = 0; i < 200; ++i) a.add(item_of(i));
  a.subtract(b);
  EXPECT_FALSE(a.decode().ok);
}

TEST(Ibf, MismatchedSketchesRefuseToSubtract) {
  Ibf a(32, 1);
  Ibf b(64, 1);
  EXPECT_THROW(a.subtract(b), common::ConfigError);
  Ibf c(32, 2);
  EXPECT_THROW(a.subtract(c), common::ConfigError);
}

TEST(Ibf, WireBytesTrackTheCellCount) {
  const Ibf a(64, 0);
  EXPECT_EQ(a.wire_bytes(), 64 * Ibf::kCellBytes + 16);
}

// ---- ShardRouter: liveness + elections -------------------------------------

TEST(ShardRouter, RouteSkipsDeadPrimariesTransparently) {
  ShardRouter router(ShardMap(iota_nodes(4), {.replication = 2, .seed = 4}),
                     /*election_seed=*/17);
  const std::string key = "payload:42";
  const std::vector<HostId> pref = router.map().preference(key);
  const std::vector<HostId> healthy = router.route(key);
  ASSERT_EQ(healthy.size(), 2u);
  EXPECT_EQ(healthy[0], pref[0]);

  (void)router.mark_down(pref[0], 1.0);
  const std::vector<HostId> degraded = router.route(key);
  ASSERT_EQ(degraded.size(), 2u);
  EXPECT_EQ(degraded[0], pref[1]);  // next live node in ring order
  EXPECT_EQ(degraded[1], pref[2]);

  router.mark_up(pref[0]);
  EXPECT_EQ(router.route(key), healthy);
}

TEST(ShardRouter, LivePreferenceShrinksWithTheClusterAndNeverLies) {
  ShardRouter router(ShardMap(iota_nodes(4), {.replication = 2, .seed = 4}),
                     /*election_seed=*/17);
  (void)router.mark_down(1, 0.5);
  (void)router.mark_down(3, 0.6);
  EXPECT_EQ(router.live_count(), 2u);
  for (const std::string& key : sample_keys(50)) {
    const std::vector<HostId> live = router.live_preference(key);
    ASSERT_EQ(live.size(), 2u);
    for (const HostId node : live) {
      EXPECT_FALSE(router.is_down(node));
    }
  }
}

TEST(ShardRouter, MarkDownIsIdempotentAndTermsAreDense) {
  ShardRouter router(ShardMap(iota_nodes(4), {.replication = 2, .seed = 4}),
                     /*election_seed=*/17);
  const ha::ElectionRecord first = router.mark_down(2, 1.0);
  EXPECT_EQ(first.failed, 2u);
  EXPECT_NE(first.promoted, 2u);
  EXPECT_EQ(first.term, 0u);
  const ha::ElectionRecord again = router.mark_down(2, 9.0);
  EXPECT_EQ(again.term, first.term);
  EXPECT_EQ(again.promoted, first.promoted);
  EXPECT_DOUBLE_EQ(again.at_s, first.at_s);
  ASSERT_EQ(router.elections().size(), 1u);

  const ha::ElectionRecord second = router.mark_down(0, 2.0);
  EXPECT_EQ(second.term, 1u);
  EXPECT_EQ(router.elections().size(), 2u);
}

TEST(ShardRouter, LastNodeStandingPromotesItself) {
  ShardRouter router(ShardMap(iota_nodes(2), {.replication = 2, .seed = 4}),
                     /*election_seed=*/17);
  (void)router.mark_down(0, 1.0);
  const ha::ElectionRecord record = router.mark_down(1, 2.0);
  EXPECT_EQ(record.failed, 1u);
  EXPECT_EQ(record.promoted, 1u);  // nobody left to promote
  EXPECT_TRUE(router.route("k").empty());
}

TEST(ShardRouter, SameSeedElectionsReplayIdentically) {
  const auto replay = [](std::uint64_t election_seed) {
    ShardRouter router(
        ShardMap(iota_nodes(6), {.replication = 3, .seed = 21}),
        election_seed);
    std::vector<ha::ElectionRecord> records;
    records.push_back(router.mark_down(4, 0.25));
    records.push_back(router.mark_down(1, 0.50));
    router.mark_up(4);
    records.push_back(router.mark_down(2, 0.75));
    return records;
  };
  const std::vector<ha::ElectionRecord> a = replay(99);
  const std::vector<ha::ElectionRecord> b = replay(99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].failed, b[i].failed) << i;
    EXPECT_EQ(a[i].promoted, b[i].promoted) << i;
    EXPECT_EQ(a[i].ballot, b[i].ballot) << i;
    EXPECT_EQ(a[i].term, b[i].term) << i;
  }
  // The ballots are a function of the seed: a different stream draws
  // different numbers (the winner may coincide, the draws cannot).
  const std::vector<ha::ElectionRecord> c = replay(100);
  bool any_ballot_differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_ballot_differs |= a[i].ballot != c[i].ballot;
  }
  EXPECT_TRUE(any_ballot_differs);
}

// ---- ha::Client fallback policy --------------------------------------------

TEST(HaClient, FallbackPolicyCoversEveryTransportStatus) {
  EXPECT_FALSE(ha::should_fall_back(kvstore::Status::kOk));
  EXPECT_TRUE(ha::should_fall_back(kvstore::Status::kError));
  EXPECT_TRUE(ha::should_fall_back(kvstore::Status::kTimeout));
  EXPECT_TRUE(ha::should_fall_back(kvstore::Status::kUnavailable));
}

// ---- NodeGroup: the stack end to end ---------------------------------------

// ---- circuit breaker + load shedding ---------------------------------------

TEST(Breaker, OpensAfterConsecutiveFailuresAndShedsFromWalks) {
  ShardRouter router(ShardMap(iota_nodes(4), {.replication = 2, .seed = 4}),
                     /*election_seed=*/17,
                     {.failure_threshold = 3, .cooldown_routes = 1000});
  const std::string key = "payload:42";
  const HostId primary = router.route(key)[0];
  router.note_op_outcome(primary, false);
  router.note_op_outcome(primary, false);
  EXPECT_FALSE(router.breaker_open(primary));  // threshold not reached
  router.note_op_outcome(primary, false);
  EXPECT_TRUE(router.breaker_open(primary));
  EXPECT_EQ(router.stats().breaker_opens, 1u);

  // Shed from the walk: the slot extends to a healthy successor.
  const std::vector<HostId> shed_route = router.live_preference(key);
  for (const HostId node : shed_route) EXPECT_NE(node, primary);
  EXPECT_GT(router.stats().shed, 0u);
  // ...but the last-resort walk still reaches it (sheds load, not data).
  const std::vector<HostId> all =
      router.live_preference(key, /*ignore_breaker=*/true);
  EXPECT_EQ(all[0], primary);

  // A success anywhere resets only that node's streak; an intervening
  // success on the broken node is impossible while shed, so mark_up is
  // the operator's reset.
  router.mark_up(primary);
  EXPECT_FALSE(router.breaker_open(primary));
}

TEST(Breaker, HalfOpenProbeClosesOnSuccessAndReArmsOnFailure) {
  ShardRouter router(ShardMap(iota_nodes(4), {.replication = 2, .seed = 4}),
                     /*election_seed=*/17,
                     {.failure_threshold = 1, .cooldown_routes = 2});
  const std::string key = "payload:7";
  const HostId primary = router.route(key)[0];
  router.note_op_outcome(primary, false);
  ASSERT_TRUE(router.breaker_open(primary));

  // Burn the cooldown with walk decisions, then the next walk admits
  // the node as a probe.
  (void)router.live_preference(key);
  (void)router.live_preference(key);
  const std::vector<HostId> probe_walk = router.live_preference(key);
  EXPECT_EQ(probe_walk[0], primary);
  EXPECT_GE(router.stats().breaker_probes, 1u);

  // Probe fails: re-armed, shed again.
  router.note_op_outcome(primary, false);
  EXPECT_TRUE(router.breaker_open(primary));
  EXPECT_NE(router.live_preference(key)[0], primary);

  // Next probe succeeds: breaker closes for good.
  (void)router.live_preference(key);
  (void)router.live_preference(key);
  (void)router.live_preference(key);
  router.note_op_outcome(primary, true);
  EXPECT_FALSE(router.breaker_open(primary));
  EXPECT_EQ(router.live_preference(key)[0], primary);
}

TEST(Breaker, AvailabilityFloorKeepsServingWhenEveryReplicaIsOpen) {
  ShardRouter router(ShardMap(iota_nodes(3), {.replication = 3, .seed = 4}),
                     /*election_seed=*/17,
                     {.failure_threshold = 1, .cooldown_routes = 1000});
  for (HostId node = 0; node < 3; ++node) {
    router.note_op_outcome(node, false);
    EXPECT_TRUE(router.breaker_open(node));
  }
  // All breakers open: shedding everything would turn an overload
  // control into an outage, so the walk falls back to the shed set.
  const std::vector<HostId> route = router.live_preference("k");
  EXPECT_FALSE(route.empty());
}

TEST(Breaker, FlappingReplicaIsShedAndWritesKeepLanding) {
  // End to end through the NodeGroup: an always-erroring replica opens
  // its breaker after a few puts; later puts stop burning retry budget
  // against it (writes keep succeeding on the healthy replicas).
  NodeGroupConfig config{.nodes = 4, .shard = {.replication = 2, .seed = 31}};
  NodeGroup group(config);
  fault::FaultPlan plan;
  plan.seed = 77;
  plan.stores[1].error_prob = 1.0;
  group.set_fault(plan);
  std::size_t ok = 0;
  for (int i = 0; i < 40; ++i) {
    const ha::WriteResult res =
        group.client(0).put("k" + std::to_string(i), "v");
    EXPECT_EQ(res.attempted + res.expired, res.routed);
    if (res.status == kvstore::Status::kOk) ++ok;
  }
  EXPECT_EQ(ok, 40u);
  EXPECT_TRUE(group.router().breaker_open(1));
  EXPECT_GT(group.router().stats().breaker_opens, 0u);
  EXPECT_GT(group.router().stats().shed, 0u);
}

// ---- fan-out deadline budget -----------------------------------------------

TEST(DeadlineBudget, OneLogicalOpSharesOneDeadlineAcrossReplicas) {
  // A dead primary must not let each subsequent replica re-up a full
  // per-replica deadline: the fan-out charges everything against one
  // budget, and replicas whose turn comes too late count as expired.
  NodeGroupConfig config{.nodes = 4, .shard = {.replication = 2, .seed = 31}};
  config.retry.max_attempts = 50;
  config.retry.deadline_s = 0.3;
  config.retry.attempt_timeout_s = 0.1;
  config.breaker.enabled = false;  // isolate the budget from shedding
  NodeGroup group(config);
  const std::string key = "object:3";
  const HostId primary = group.router().route(key)[0];
  group.store(primary).fail_stop();  // dead store the router can't see

  const double before = group.consumed_time();
  const ha::WriteResult res = group.client(0).put(key, "v");
  EXPECT_EQ(res.routed, 2u);
  EXPECT_EQ(res.attempted, 1u);  // the primary burned the whole budget
  EXPECT_EQ(res.expired, 1u);    // the replica's turn came too late
  EXPECT_NE(res.status, kvstore::Status::kOk);
  // ~3 attempts x 0.1 s, nowhere near 2 deadlines.
  EXPECT_LT(group.consumed_time() - before, 0.55);
}

TEST(DeadlineBudget, WriteResultConservationHoldsUnderCrashes) {
  NodeGroup group({.nodes = 4, .shard = {.replication = 2, .seed = 31}});
  (void)group.crash(2, 0.1);
  for (int i = 0; i < 32; ++i) {
    const ha::WriteResult res =
        group.client(0).put("c" + std::to_string(i), "v");
    EXPECT_EQ(res.attempted + res.expired, res.routed) << "put " << i;
    EXPECT_EQ(res.status, kvstore::Status::kOk);
  }
}

TEST(NodeGroup, PutFansOutToEveryReplicaAndFeedsTheirOpLogs) {
  NodeGroup group({.nodes = 4, .shard = {.replication = 2, .seed = 31}});
  const std::string key = "object:7";
  const ha::WriteResult res = group.client(0).put(key, "v0");
  EXPECT_EQ(res.status, kvstore::Status::kOk);
  EXPECT_EQ(res.attempted, 2u);
  EXPECT_EQ(res.acked, 2u);

  const std::vector<HostId> replicas = group.router().route(key);
  ASSERT_EQ(replicas.size(), 2u);
  for (HostId node = 0; node < 4; ++node) {
    const bool holds =
        std::find(replicas.begin(), replicas.end(), node) != replicas.end();
    EXPECT_EQ(group.store(node).exists(key), holds) << "node " << node;
    EXPECT_EQ(group.oplog(node).size(), holds ? 1u : 0u) << "node " << node;
  }
}

TEST(NodeGroup, ReadFallsBackWhenThePrimaryIsDown) {
  NodeGroup group({.nodes = 4, .shard = {.replication = 2, .seed = 31}});
  const std::string key = "object:9";
  ASSERT_EQ(group.client(0).put(key, "payload").acked, 2u);
  const std::vector<HostId> replicas = group.router().route(key);

  (void)group.crash(replicas[0], 0.5);
  const ha::ReadResult read = group.client(0).get(key);
  EXPECT_EQ(read.reply.status, kvstore::Status::kOk);
  EXPECT_TRUE(read.reply.ok);
  EXPECT_EQ(read.reply.blob, "payload");
  EXPECT_EQ(read.served_by, replicas[1]);
  // A crashed primary is demoted from the live preference entirely, so
  // the surviving replica answers FIRST — transparent demotion, not a
  // mid-walk fallback (those are counted when a live replica fails).
  EXPECT_FALSE(read.fallback);
}

TEST(NodeGroup, ErroringReplicaDivergesButTheWriteStillLands) {
  // Exhausted retries against the always-erroring store surface as
  // kUnavailable on that replica; the logical write succeeds on the
  // healthy one and the divergence is counted for repair.
  NodeGroup group({.nodes = 3, .shard = {.replication = 2, .seed = 8}});
  const std::string key = "object:3";
  const std::vector<HostId> replicas = group.router().route(key);
  fault::FaultPlan plan;
  plan.seed = 12;
  plan.stores[replicas[0]].error_prob = 1.0;
  group.set_fault(plan);

  const ha::WriteResult res = group.client(replicas[1]).put(key, "v");
  EXPECT_EQ(res.status, kvstore::Status::kOk);
  EXPECT_EQ(res.attempted, 2u);
  EXPECT_EQ(res.acked, 1u);
  EXPECT_GE(group.router().stats().write_failures, 1u);
  EXPECT_FALSE(group.store(replicas[0]).exists(key));
  EXPECT_TRUE(group.store(replicas[1]).exists(key));

  // Reads fall back past the erroring primary and still answer.
  const ha::ReadResult read = group.client(replicas[1]).get(key);
  EXPECT_TRUE(read.reply.ok);
  EXPECT_EQ(read.served_by, replicas[1]);
}

TEST(NodeGroup, PartitionedReplicaTimesOutWithoutFailingTheWrite) {
  NodeGroup group({.nodes = 3, .shard = {.replication = 2, .seed = 8}});
  const std::string key = "doc:1";
  const std::vector<HostId> replicas = group.router().route(key);
  const HostId self = replicas[1];
  fault::FaultPlan plan;
  plan.seed = 13;
  plan.partitions.push_back({.a = self, .b = replicas[0]});
  group.set_fault(plan);

  // Non-idempotent append through the cut: a single kTimeout, no retry
  // (the ambiguous loss could double-apply), observable on the raw
  // connection...
  const kvstore::Reply raw = group.connection(self, replicas[0])
                                 .execute({.type = kvstore::CommandType::kRPush,
                                           .key = "queue:raw",
                                           .value = "e0"});
  EXPECT_EQ(raw.status, kvstore::Status::kTimeout);

  // ...while an idempotent replicated put retries the cut replica until
  // kUnavailable and still lands on the reachable one.
  const ha::WriteResult res = group.client(self).put(key, "v");
  EXPECT_EQ(res.status, kvstore::Status::kOk);
  EXPECT_EQ(res.attempted, 2u);
  EXPECT_EQ(res.acked, 1u);
  EXPECT_TRUE(group.store(self).exists(key));
  EXPECT_FALSE(group.store(replicas[0]).exists(key));

  // Reads walk past the unreachable primary and answer from self.
  const ha::ReadResult read = group.client(self).get(key);
  EXPECT_EQ(read.reply.status, kvstore::Status::kOk);
  EXPECT_TRUE(read.reply.ok);
  EXPECT_EQ(read.reply.blob, "v");
  EXPECT_EQ(read.served_by, self);
  EXPECT_TRUE(read.fallback);
}

TEST(NodeGroup, AllReplicasDownMakesTheWriteUnavailable) {
  NodeGroup group({.nodes = 3, .shard = {.replication = 2, .seed = 8}});
  for (HostId node = 0; node < 3; ++node) (void)group.crash(node, 1.0);
  const ha::WriteResult res = group.client(0).put("k", "v");
  EXPECT_EQ(res.status, kvstore::Status::kUnavailable);
  EXPECT_EQ(res.attempted, 0u);
  EXPECT_EQ(res.acked, 0u);
}

TEST(NodeGroup, BatchedPutGetRoundTripsEveryKey) {
  NodeGroup group({.nodes = 4, .shard = {.replication = 2, .seed = 77}});
  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back("rec:" + std::to_string(i), "v" + std::to_string(i));
    keys.push_back(pairs.back().first);
  }
  const std::vector<ha::WriteResult> writes = group.client(1).put_many(pairs);
  ASSERT_EQ(writes.size(), pairs.size());
  for (const ha::WriteResult& w : writes) {
    EXPECT_EQ(w.status, kvstore::Status::kOk);
    EXPECT_EQ(w.acked, 2u);
  }
  const std::vector<ha::ReadResult> reads = group.client(2).get_many(keys);
  ASSERT_EQ(reads.size(), keys.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_TRUE(reads[i].reply.ok) << keys[i];
    EXPECT_EQ(reads[i].reply.blob, pairs[i].second) << keys[i];
  }
}

// ---- recovery: snapshot + op-log replay ------------------------------------

TEST(Recovery, SnapshotPlusLogReplayRebuildsTheExactStore) {
  kvstore::Store store;
  ha::OpLog log;
  const auto apply_and_log = [&](kvstore::Command cmd) {
    (void)kvstore::apply_command(store, cmd);
    (void)log.append(std::move(cmd));
  };
  apply_and_log({.type = kvstore::CommandType::kSet, .key = "a", .value = "1"});
  apply_and_log(
      {.type = kvstore::CommandType::kRPush, .key = "l", .value = "x"});
  const ha::Snapshot snap = ha::take_snapshot(store, log.last_seq());
  // Post-snapshot writes live only in the log tail.
  apply_and_log(
      {.type = kvstore::CommandType::kRPush, .key = "l", .value = "y"});
  apply_and_log({.type = kvstore::CommandType::kIncrBy, .key = "c", .arg0 = 5});
  apply_and_log({.type = kvstore::CommandType::kDel, .key = "a"});

  kvstore::Store rebuilt;
  const ha::RecoveryReport report = ha::recover(rebuilt, snap, log);
  EXPECT_EQ(report.snapshot_seq, 2u);
  EXPECT_EQ(report.snapshot_keys, 2u);
  EXPECT_EQ(report.replayed_ops, 3u);
  EXPECT_EQ(rebuilt.keys(), store.keys());
  for (const std::string& key : store.keys()) {
    EXPECT_EQ(rebuilt.value_digest(key), store.value_digest(key)) << key;
  }
  EXPECT_EQ(rebuilt.lrange("l", 0, -1),
            (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(rebuilt.counter("c"), 5);
}

TEST(Recovery, ReplayFailuresAreCountedNotSwallowed) {
  // Regression for the status-flow finding in recover(): replay used to
  // (void)-discard every Reply, so a log entry that re-applied with no
  // effect vanished silently. A corrupted tail entry (here: a read of a
  // key the snapshot+log state cannot contain) must be surfaced.
  ha::OpLog log;
  (void)log.append(
      {.type = kvstore::CommandType::kSet, .key = "a", .value = "1"});
  (void)log.append({.type = kvstore::CommandType::kGet, .key = "ghost"});
  kvstore::Store rebuilt;
  const ha::RecoveryReport report = ha::recover(rebuilt, ha::Snapshot{}, log);
  EXPECT_EQ(report.replayed_ops, 1u);
  EXPECT_EQ(report.failed_ops, 1u);
  EXPECT_TRUE(report.diverged());
}

TEST(Recovery, DelOfAbsentKeyIsALegitimateNoOpNotDivergence) {
  ha::OpLog log;
  (void)log.append({.type = kvstore::CommandType::kDel, .key = "never"});
  kvstore::Store rebuilt;
  const ha::RecoveryReport report = ha::recover(rebuilt, ha::Snapshot{}, log);
  EXPECT_EQ(report.replayed_ops, 1u);
  EXPECT_EQ(report.failed_ops, 0u);
  EXPECT_FALSE(report.diverged());
}

TEST(Recovery, TrimDropsOnlyTheCoveredPrefix) {
  ha::OpLog log;
  for (int i = 0; i < 5; ++i) {
    (void)log.append({.type = kvstore::CommandType::kSet,
                      .key = "k" + std::to_string(i)});
  }
  log.trim(3);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.last_seq(), 5u);  // sequence numbers never rewind
  const std::vector<ha::LogEntry> tail = log.tail(0);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 4u);
  EXPECT_EQ(tail[1].seq, 5u);
}

// ---- repair: IBF anti-entropy ----------------------------------------------

TEST(Repair, PlanFindsMissingDivergentAndOrphanedKeys) {
  kvstore::Store authority;
  kvstore::Store target;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "k" + std::to_string(i);
    authority.set(key, "v" + std::to_string(i));
    if (i != 7) target.set(key, "v" + std::to_string(i));  // k7 missing
  }
  target.set("k3", "diverged");        // same key, different value
  target.set("orphan", "stale");       // authority never had it

  const ha::RepairPlan plan = ha::plan_repair(authority, target);
  ASSERT_TRUE(plan.decoded);
  // copy_keys follow the (deterministic) peel order, not key order.
  std::vector<std::string> copies = plan.copy_keys;
  std::sort(copies.begin(), copies.end());
  EXPECT_EQ(copies, (std::vector<std::string>{"k3", "k7"}));
  EXPECT_EQ(plan.delete_keys, (std::vector<std::string>{"orphan"}));
  EXPECT_GT(plan.ibf_wire_bytes, 0u);

  const ha::RepairReport report = ha::apply_repair(authority, target, plan);
  EXPECT_EQ(report.copied, 2u);
  EXPECT_EQ(report.deleted, 1u);
  EXPECT_GT(report.payload_bytes, 0u);
  EXPECT_EQ(target.keys(), authority.keys());
  for (const std::string& key : authority.keys()) {
    EXPECT_EQ(target.value_digest(key), authority.value_digest(key)) << key;
  }

  // Converged stores plan an empty repair in one round.
  const ha::RepairPlan again = ha::plan_repair(authority, target);
  EXPECT_TRUE(again.decoded);
  EXPECT_EQ(again.rounds, 1u);
  EXPECT_TRUE(again.copy_keys.empty());
  EXPECT_TRUE(again.delete_keys.empty());
}

TEST(Repair, UndecodableOverloadDoublesCellsUntilItDecodes) {
  kvstore::Store authority;
  kvstore::Store target;  // empty: the difference is the whole keyspace
  for (int i = 0; i < 400; ++i) {
    authority.set("k" + std::to_string(i), std::string(20, 'x'));
  }
  ha::RepairConfig config;
  config.initial_cells = 8;  // far below the 400-key difference
  const ha::RepairPlan plan = ha::plan_repair(authority, target, config);
  ASSERT_TRUE(plan.decoded);
  EXPECT_GT(plan.rounds, 1u);
  EXPECT_GT(plan.cells, config.initial_cells);
  EXPECT_EQ(plan.copy_keys.size(), 400u);
  // Every undecodable round still shipped its sketches.
  EXPECT_GT(plan.ibf_wire_bytes,
            plan.cells * Ibf::kCellBytes);
}

TEST(Repair, GivesUpLoudlyWhenTheDifferenceIsTheKeyspace) {
  kvstore::Store authority;
  kvstore::Store target;
  for (int i = 0; i < 200; ++i) authority.set("k" + std::to_string(i), "v");
  ha::RepairConfig config;
  config.initial_cells = 8;
  config.max_cells = 16;  // can never hold a 200-key difference
  EXPECT_THROW((void)ha::plan_repair(authority, target, config),
               common::ConfigError);
}

TEST(Repair, KeyFilterScopesTheReconciliation) {
  kvstore::Store authority;
  kvstore::Store target;
  authority.set("shared:1", "v");
  authority.set("private:1", "v");  // outside the filter: not copied
  const ha::KeyFilter filter = [](const std::string& key) {
    return key.starts_with("shared:");
  };
  const ha::RepairPlan plan =
      ha::plan_repair(authority, target, {}, filter);
  ASSERT_TRUE(plan.decoded);
  EXPECT_EQ(plan.copy_keys, (std::vector<std::string>{"shared:1"}));
  EXPECT_TRUE(plan.delete_keys.empty());
}

TEST(Repair, WireCostStaysProportionalToTheDeltaNotTheKeyspace) {
  kvstore::Store authority;
  kvstore::Store target;
  std::size_t keyspace_bytes = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::string value(40, 'x');
    authority.set(key, value);
    if (i >= 10) target.set(key, value);  // 10 keys differ
    keyspace_bytes += key.size() + value.size();
  }
  const ha::RepairReport report =
      ha::repair(authority, target, /*fabric=*/nullptr);
  EXPECT_EQ(report.copied, 10u);
  // Sketches + delta payload come to a small fraction of shipping the
  // 2000-key keyspace.
  const ha::RepairPlan plan = ha::plan_repair(authority, target);
  EXPECT_TRUE(plan.copy_keys.empty());
  EXPECT_LT(report.payload_bytes, keyspace_bytes / 10);
}

// ---- NodeGroup: crash -> checkpoint -> rejoin ------------------------------

TEST(NodeGroup, CrashCheckpointRejoinRestoresEveryReplicaByte) {
  NodeGroup group({.nodes = 4, .shard = {.replication = 2, .seed = 4}});
  ha::Client& client = group.client(0);
  for (int i = 0; i < 40; ++i) {
    ASSERT_GE(client.put("k" + std::to_string(i), "v" + std::to_string(i))
                  .acked,
              1u);
  }
  group.checkpoint(1);
  for (int i = 40; i < 60; ++i) {  // post-checkpoint: only in the op log
    ASSERT_GE(client.put("k" + std::to_string(i), "v" + std::to_string(i))
                  .acked,
              1u);
  }

  const ha::ElectionRecord election = group.crash(1, 1.0);
  EXPECT_EQ(election.failed, 1u);
  EXPECT_EQ(group.store(1).stats().keys, 0u);  // wiped
  for (int i = 60; i < 80; ++i) {  // written while node 1 is down
    ASSERT_GE(client.put("k" + std::to_string(i), "v" + std::to_string(i))
                  .acked,
              1u);
  }

  const NodeGroup::RejoinReport report = group.rejoin(1);
  EXPECT_GT(report.recovery.snapshot_keys, 0u);
  EXPECT_FALSE(group.router().is_down(1));

  // Every key routed to node 1 must be back, byte-identical to a live
  // peer's copy; keys NOT routed to it must not have been smuggled in.
  std::size_t replicated_here = 0;
  for (int i = 0; i < 80; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::vector<HostId> replicas = group.router().route(key);
    const bool here =
        std::find(replicas.begin(), replicas.end(), HostId{1}) !=
        replicas.end();
    if (!here) {
      EXPECT_FALSE(group.store(1).exists(key)) << key;
      continue;
    }
    ++replicated_here;
    const HostId peer = replicas[0] == 1 ? replicas[1] : replicas[0];
    EXPECT_EQ(group.store(1).value_digest(key),
              group.store(peer).value_digest(key))
        << key;
  }
  EXPECT_GT(replicated_here, 0u);

  // And the rejoined node serves reads again as a first-class replica.
  const ha::ReadResult read = group.client(2).get("k70");
  EXPECT_TRUE(read.reply.ok);
  EXPECT_EQ(read.reply.blob, "v70");
}

TEST(NodeGroup, RejoinRepairCopiesOnlyWhatWasMissedWhileDown) {
  NodeGroup group({.nodes = 3, .shard = {.replication = 2, .seed = 6}});
  ha::Client& client = group.client(0);
  for (int i = 0; i < 30; ++i) {
    (void)client.put("k" + std::to_string(i), "v");
  }
  (void)group.crash(2, 1.0);
  std::size_t missed_here = 0;
  for (int i = 30; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    (void)client.put(key, "v");
    const std::vector<HostId> pref = group.router().map().preference(key);
    // Keys whose healthy route includes node 2 were missed by it.
    if (pref[0] == 2 || pref[1] == 2) ++missed_here;
  }
  const NodeGroup::RejoinReport report = group.rejoin(2);
  // Replay restored the pre-crash writes; repair closed the missed ones
  // (and nothing beyond them — the log made the rest exact).
  EXPECT_EQ(report.repair.copied, missed_here);
}

TEST(NodeGroup, SameSeedRecoveryTracesAreIdentical) {
  const auto run = [] {
    NodeGroup group({.nodes = 4, .shard = {.replication = 2, .seed = 4}});
    ha::Client& client = group.client(0);
    for (int i = 0; i < 30; ++i) {
      (void)client.put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    group.checkpoint(1);
    (void)group.crash(1, 1.0);
    for (int i = 30; i < 45; ++i) {
      (void)client.put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    const NodeGroup::RejoinReport report = group.rejoin(1);
    std::ostringstream trace;
    for (const ha::ElectionRecord& e : group.router().elections()) {
      trace << e.term << ':' << e.failed << "->" << e.promoted << '@'
            << e.ballot << ';';
    }
    trace << report.recovery.snapshot_seq << ','
          << report.recovery.snapshot_keys << ','
          << report.recovery.replayed_ops << ',' << report.repair.copied
          << ',' << report.repair.deleted << ','
          << report.repair.payload_bytes << '|';
    for (const std::string& key : group.store(1).keys()) {
      trace << key << '=' << group.store(1).value_digest(key) << ';';
    }
    return trace.str();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// ---- runtime integration: replicated jobs ----------------------------------

class LinearWorkload final : public core::Workload {
 public:
  [[nodiscard]] std::string name() const override { return "linear"; }
  [[nodiscard]] partition::Layout preferred_layout() const override {
    return partition::Layout::kRepresentative;
  }
  void reset(std::size_t, std::uint32_t) override {}
  void run(cluster::NodeContext& ctx, const data::Dataset&,
           std::span<const std::uint32_t> indices) override {
    ctx.meter().add(500.0 * static_cast<double>(indices.size()));
  }
};

data::Dataset small_corpus(std::size_t docs, std::uint64_t seed = 7) {
  data::TextCorpusConfig cfg;
  cfg.num_docs = docs;
  cfg.seed = seed;
  return data::generate_text_corpus(cfg, "corpus");
}

runtime::JobSpec fast_spec() {
  runtime::JobSpec spec;
  spec.sampling.min_records = 20;
  spec.sampling.steps = 3;
  spec.kmodes.num_strata = 8;
  spec.kmodes.max_iterations = 4;
  spec.sketch.num_hashes = 16;
  return spec;
}

runtime::JobSummary run_job(const data::Dataset& dataset,
                            const fault::FaultPlan* plan,
                            runtime::JobSpec spec, std::size_t nodes,
                            std::string* trace_and_summary = nullptr) {
  cluster::Cluster cluster(
      cluster::standard_cluster(static_cast<std::uint32_t>(nodes)));
  const auto energy = energy::GreenEnergyEstimator::standard(72);
  std::unique_ptr<fault::FaultInjector> inj;
  if (plan != nullptr) {
    inj = std::make_unique<fault::FaultInjector>(*plan);
    cluster.set_fault(inj.get());
  }
  LinearWorkload workload;
  runtime::JobRuntime rt(cluster, energy, std::move(spec));
  const runtime::JobSummary summary = rt.run(dataset, workload);
  if (trace_and_summary != nullptr) {
    *trace_and_summary =
        rt.trace().chrome_trace_json() + "\n" + summary_json(summary);
  }
  return summary;
}

TEST(ReplicatedJob, RejectsReplicationBeyondTheClusterSize) {
  cluster::Cluster cluster(cluster::standard_cluster(4));
  const auto energy = energy::GreenEnergyEstimator::standard(72);
  runtime::JobSpec spec = fast_spec();
  spec.replication = 5;
  EXPECT_THROW(runtime::JobRuntime(cluster, energy, spec),
               common::ConfigError);
  spec.replication = 0;
  EXPECT_THROW(runtime::JobRuntime(cluster, energy, spec),
               common::ConfigError);
}

TEST(ReplicatedJob, FaultFreeRunStaysKOkAndWritesKCopies) {
  const data::Dataset dataset = small_corpus(200);
  runtime::JobSpec spec = fast_spec();
  spec.replication = 2;
  const runtime::JobSummary summary =
      run_job(dataset, nullptr, spec, /*nodes=*/4);
  EXPECT_EQ(summary.status, runtime::JobStatus::kOk);
  EXPECT_FALSE(summary.degraded);
  EXPECT_EQ(summary.elections, 0u);
  // Every ingested record acked on both replicas.
  EXPECT_EQ(summary.replica_writes, 2 * dataset.size());
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
}

TEST(ReplicatedJob, SameSeedReplicatedDegradedRunIsByteIdentical) {
  const data::Dataset dataset = small_corpus(200);
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.nodes[3].fail_stop_at_s = 0.0;
  runtime::JobSpec spec = fast_spec();
  spec.replication = 2;
  std::string a;
  std::string b;
  (void)run_job(dataset, &plan, spec, 4, &a);
  (void)run_job(dataset, &plan, spec, 4, &b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// The checked-in example plan: correlated loss of two replicas at k=3.
// One fail-stop lands before execution, the second mid-run; with three
// copies of every record the job must degrade, not lose data.
TEST(ReplicatedJob, ExamplePlanCorrelatedTwoReplicaLossLosesNothing) {
  const std::string path =
      std::string(HETSIM_REPO_DIR) + "/examples/fault_plan_replica_loss.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const fault::FaultPlan plan = fault::FaultPlan::from_json_text(buf.str());
  ASSERT_EQ(plan.nodes.size(), 2u);

  const data::Dataset dataset = small_corpus(400);
  runtime::JobSpec spec = fast_spec();
  spec.replication = 3;
  const runtime::JobSummary summary =
      run_job(dataset, &plan, spec, /*nodes=*/6);
  EXPECT_EQ(summary.status, runtime::JobStatus::kDegraded);
  EXPECT_EQ(summary.nodes_lost.size(), 2u);
  for (const std::uint32_t node : summary.nodes_lost) {
    EXPECT_TRUE(node == 1 || node == 2) << node;
  }
  EXPECT_GE(summary.elections, 2u);
  EXPECT_GT(summary.replica_rescued_records, 0u);
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
}

}  // namespace
}  // namespace hetsim

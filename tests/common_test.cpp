// Unit tests for hetsim::common: rng, hashing, stats, allocation, table.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "common/allocation.h"
#include "common/bytes.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace hetsim::common {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.bounded(5)];
  for (const int c : seen) EXPECT_GT(c, 100);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stdev(), 1.0, 0.05);
}

TEST(Rng, ZipfSkewsTowardSmallValues) {
  Rng rng(15);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(100, 1.0)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Every draw in range.
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 20000);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(21);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Hash, Mix64Avalanches) {
  // Flipping one input bit should change roughly half the output bits.
  const std::uint64_t base = mix64(0x12345678);
  int diff_bits = 0;
  const std::uint64_t flipped = mix64(0x12345678 ^ 1);
  for (int b = 0; b < 64; ++b) {
    if (((base ^ flipped) >> b) & 1) ++diff_bits;
  }
  EXPECT_GT(diff_bits, 20);
  EXPECT_LT(diff_bits, 44);
}

TEST(Hash, BytesStableAndDistinct) {
  EXPECT_EQ(hash_bytes("hello"), hash_bytes("hello"));
  EXPECT_NE(hash_bytes("hello"), hash_bytes("hellp"));
  EXPECT_NE(hash_bytes(""), hash_bytes(std::string_view("\0", 1)));
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(OnlineStats, MeanVarianceMatchClosedForm) {
  OnlineStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.5 * x + 2.0);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineHasHighR2) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    const double x = static_cast<double>(i);
    xs.push_back(x);
    ys.push_back(2.0 * x + 10.0 + rng.normal(0, 1.0));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(LinearFit, DegenerateXGivesFlatFit) {
  std::vector<double> xs{2, 2, 2};
  std::vector<double> ys{1, 2, 3};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(Polynomial, FitsQuadraticExactly) {
  std::vector<double> xs{0, 1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(1.0 + 2.0 * x + 0.5 * x * x);
  const std::vector<double> c = fit_polynomial(xs, ys, 2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c[0], 1.0, 1e-9);
  EXPECT_NEAR(c[1], 2.0, 1e-9);
  EXPECT_NEAR(c[2], 0.5, 1e-9);
  EXPECT_NEAR(eval_polynomial(c, 10.0), 1.0 + 20.0 + 50.0, 1e-6);
}

TEST(Polynomial, RejectsUnderdeterminedSystems) {
  std::vector<double> xs{1, 2};
  std::vector<double> ys{1, 2};
  EXPECT_THROW((void)fit_polynomial(xs, ys, 2), std::invalid_argument);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Allocation, SharesSumToTotal) {
  const auto shares = proportional_allocation({1.0, 2.0, 3.0}, 100);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::size_t{0}),
            100u);
  EXPECT_NEAR(static_cast<double>(shares[2]), 50.0, 1.0);
}

TEST(Allocation, ZeroWeightsSplitEvenly) {
  const auto shares = proportional_allocation({0.0, 0.0, 0.0}, 10);
  EXPECT_EQ(shares[0] + shares[1] + shares[2], 10u);
  EXPECT_LE(shares[0] - shares[2], 1u);
}

TEST(Allocation, NegativeWeightsTreatedAsZero) {
  const auto shares = proportional_allocation({-5.0, 1.0}, 10);
  EXPECT_EQ(shares[0], 0u);
  EXPECT_EQ(shares[1], 10u);
}

TEST(Allocation, ExactProportionsNoRemainder) {
  const auto shares = proportional_allocation({1.0, 1.0, 2.0}, 8);
  EXPECT_EQ(shares[0], 2u);
  EXPECT_EQ(shares[1], 2u);
  EXPECT_EQ(shares[2], 4u);
}

TEST(Bytes, U32RoundTrip) {
  std::string buf;
  append_u32(buf, 0xdeadbeef);
  append_u32(buf, 0);
  append_u32(buf, 1);
  EXPECT_EQ(read_u32(buf, 0), 0xdeadbeefu);
  EXPECT_EQ(read_u32(buf, 4), 0u);
  EXPECT_EQ(read_u32(buf, 8), 1u);
}

TEST(Bytes, U64RoundTrip) {
  std::string buf;
  append_u64(buf, 0x123456789abcdef0ULL);
  EXPECT_EQ(read_u64(buf, 0), 0x123456789abcdef0ULL);
}

TEST(Bytes, TruncatedReadThrows) {
  std::string buf = "abc";
  EXPECT_THROW((void)read_u32(buf, 0), StoreError);
}

TEST(Table, RendersAllRows) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row_numeric("b", {2.5}, 1);
  std::ostringstream os;
  t.print(os, "title");
  const std::string s = os.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesNothingButDelimits) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

}  // namespace
}  // namespace hetsim::common

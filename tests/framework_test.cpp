// Integration tests of the full ParetoFramework pipeline: stratify ->
// estimate -> optimize -> partition -> execute, across workloads and
// strategies. These encode the paper's qualitative claims:
//   * Het-Aware cuts makespan versus the Stratified equal-size baseline;
//   * Het-Energy-Aware trades some speed for lower dirty energy;
//   * quality (pattern sets / compression ratio) is preserved;
//   * the predicted frontier is monotone and the baseline lies off it.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "core/compression_workload.h"
#include "core/framework.h"
#include "core/mining_workload.h"
#include "core/subtree_workload.h"
#include "data/generators.h"

namespace hetsim::core {
namespace {

struct Fixture {
  cluster::Cluster cluster;
  energy::GreenEnergyEstimator energy;
  ParetoFramework framework;

  explicit Fixture(std::uint32_t nodes, FrameworkConfig cfg = {})
      : cluster(cluster::standard_cluster(nodes)),
        energy(energy::GreenEnergyEstimator::standard(72)),
        framework(cluster, energy, cfg) {}
};

FrameworkConfig fast_config() {
  FrameworkConfig cfg;
  cfg.sketch.num_hashes = 32;
  cfg.kmodes.num_strata = 12;
  cfg.kmodes.max_iterations = 10;
  cfg.sampling.steps = 4;
  cfg.sampling.min_fraction = 0.02;
  cfg.sampling.max_fraction = 0.10;
  return cfg;
}

TEST(Framework, PrepareLearnsPlausibleModels) {
  Fixture fx(4, fast_config());
  const data::Dataset ds = data::generate_text_corpus(data::rcv1_like(0.25));
  PatternMiningWorkload workload({.min_support = 0.08, .max_pattern_length = 3});
  fx.framework.prepare(ds, workload);
  const auto models = fx.framework.node_models();
  ASSERT_EQ(models.size(), 4u);
  for (const auto& m : models) {
    EXPECT_GT(m.slope, 0.0);
    EXPECT_GE(m.intercept, 0.0);
  }
  // Type-4 node (speed 1) must have a steeper slope than type-1 (speed 4).
  EXPECT_GT(models[3].slope, models[0].slope * 2.0);
  EXPECT_GT(fx.framework.setup_time_s(), 0.0);
  // Strata computed over the whole dataset.
  EXPECT_EQ(fx.framework.strata().assignment.size(), ds.size());
}

TEST(Framework, PlanSizesFollowStrategy) {
  Fixture fx(4, fast_config());
  const data::Dataset ds = data::generate_text_corpus(data::rcv1_like(0.25));
  PatternMiningWorkload workload({.min_support = 0.08, .max_pattern_length = 3});
  fx.framework.prepare(ds, workload);
  const auto eq = fx.framework.plan_sizes(Strategy::kStratified, ds.size());
  const auto het = fx.framework.plan_sizes(Strategy::kHetAware, ds.size());
  for (const auto s : eq) EXPECT_NEAR(s, ds.size() / 4.0, 1.0);
  // Het-aware gives the fast node more than the slow node.
  EXPECT_GT(het[0], het[3]);
  EXPECT_EQ(std::accumulate(het.begin(), het.end(), std::size_t{0}), ds.size());
}

TEST(Framework, RunBeforePrepareThrows) {
  Fixture fx(4, fast_config());
  const data::Dataset ds = data::generate_text_corpus(data::rcv1_like(0.1));
  PatternMiningWorkload workload({.min_support = 0.1, .max_pattern_length = 2});
  EXPECT_THROW((void)fx.framework.run(Strategy::kStratified, ds, workload),
               common::ConfigError);
}

class TextMiningEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = std::make_unique<Fixture>(8, fast_config());
    ds_ = data::generate_text_corpus(data::rcv1_like(0.4));
    workload_ = std::make_unique<PatternMiningWorkload>(
        mining::AprioriConfig{.min_support = 0.08, .max_pattern_length = 3});
    fx_->framework.prepare(ds_, *workload_);
  }
  std::unique_ptr<Fixture> fx_;
  data::Dataset ds_;
  std::unique_ptr<PatternMiningWorkload> workload_;
};

TEST_F(TextMiningEndToEnd, HetAwareBeatsStratifiedOnTime) {
  const JobReport base = fx_->framework.run(Strategy::kStratified, ds_, *workload_);
  const JobReport het = fx_->framework.run(Strategy::kHetAware, ds_, *workload_);
  EXPECT_LT(het.exec_time_s, base.exec_time_s * 0.85)
      << "Het-Aware should cut makespan well below the equal-size baseline";
}

TEST_F(TextMiningEndToEnd, HetEnergyAwareTradesTimeForDirtyEnergy) {
  const JobReport het = fx_->framework.run(Strategy::kHetAware, ds_, *workload_);
  const JobReport green =
      fx_->framework.run(Strategy::kHetEnergyAware, ds_, *workload_);
  // Slower (or equal) than pure Het-Aware but cleaner.
  EXPECT_GE(green.exec_time_s, het.exec_time_s * 0.99);
  EXPECT_LE(green.dirty_energy_j, het.dirty_energy_j * 1.001);
}

TEST_F(TextMiningEndToEnd, MiningOutputIdenticalAcrossStrategies) {
  const JobReport a = fx_->framework.run(Strategy::kStratified, ds_, *workload_);
  const std::size_t frequent_base = workload_->globally_frequent();
  const JobReport b = fx_->framework.run(Strategy::kHetAware, ds_, *workload_);
  EXPECT_EQ(workload_->globally_frequent(), frequent_base)
      << "SON global result must not depend on partitioning";
  EXPECT_GT(frequent_base, 0u);
  EXPECT_DOUBLE_EQ(a.quality, static_cast<double>(frequent_base));
  EXPECT_DOUBLE_EQ(b.quality, static_cast<double>(frequent_base));
}

TEST_F(TextMiningEndToEnd, RepresentativeLayoutCutsFalsePositives) {
  (void)fx_->framework.run(Strategy::kStratified, ds_, *workload_);
  const std::size_t stratified_fp = workload_->false_positives();
  (void)fx_->framework.run(Strategy::kRandom, ds_, *workload_);
  const std::size_t random_fp = workload_->false_positives();
  EXPECT_LE(stratified_fp, random_fp)
      << "stratified representative partitions must not generate more "
         "false-positive candidates than random partitions";
}

TEST_F(TextMiningEndToEnd, ReportAccountingConsistent) {
  const JobReport r = fx_->framework.run(Strategy::kHetAware, ds_, *workload_);
  EXPECT_EQ(std::accumulate(r.partition_sizes.begin(), r.partition_sizes.end(),
                            std::size_t{0}),
            ds_.size());
  EXPECT_EQ(r.node_exec_s.size(), 8u);
  const double max_node =
      *std::max_element(r.node_exec_s.begin(), r.node_exec_s.end());
  EXPECT_NEAR(r.exec_time_s, max_node, r.exec_time_s * 0.5 + 1e-9);
  EXPECT_GT(r.dirty_energy_j, 0.0);
  EXPECT_GE(r.green_energy_j, 0.0);
  EXPECT_GT(r.total_work_units, 0.0);
  EXPECT_GT(r.load_time_s, 0.0);
}

TEST_F(TextMiningEndToEnd, FrontierMonotoneAndBaselineOffFrontier) {
  const std::vector<double> alphas{1.0, 0.9999, 0.999, 0.99, 0.9};
  const auto frontier = fx_->framework.predicted_frontier(alphas);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].makespan_s, frontier[i - 1].makespan_s - 1e-9);
    EXPECT_LE(frontier[i].dirty_joules, frontier[i - 1].dirty_joules + 1e-9);
  }
  // Baseline equal split predicted metrics: must not dominate any
  // frontier point.
  const auto models = fx_->framework.node_models();
  const auto eq = optimize::equal_split(models, ds_.size());
  for (const auto& pt : frontier) {
    EXPECT_FALSE(pt.makespan_s > eq.predicted_makespan_s &&
                 pt.dirty_joules > eq.predicted_dirty_joules);
  }
  EXPECT_LT(frontier.front().makespan_s, eq.predicted_makespan_s);
}

TEST(Framework, TreeMiningEndToEnd) {
  Fixture fx(8, fast_config());
  // Scale 1.0: smaller corpora make SON's local thresholds so small that
  // sampling noise inflates candidates and drowns the speed signal.
  const data::Dataset ds = data::generate_tree_corpus(data::swissprot_like(1.0));
  PatternMiningWorkload workload(
      {.min_support = 0.05, .max_pattern_length = 2});
  fx.framework.prepare(ds, workload);
  const JobReport base = fx.framework.run(Strategy::kStratified, ds, workload);
  const JobReport het = fx.framework.run(Strategy::kHetAware, ds, workload);
  EXPECT_LT(het.exec_time_s, base.exec_time_s);
  EXPECT_GT(workload.globally_frequent(), 0u);
}

TEST(Framework, GraphCompressionEndToEnd) {
  FrameworkConfig cfg = fast_config();
  cfg.energy_alpha = 0.995;
  Fixture fx(8, cfg);
  data::WebGraphConfig gcfg = data::uk_like(0.25);
  const data::Dataset ds = data::generate_graph_corpus(gcfg);
  CompressionWorkload workload(CompressionWorkload::Algorithm::kWebGraph);
  fx.framework.prepare(ds, workload);

  const JobReport base = fx.framework.run(Strategy::kStratified, ds, workload);
  const double base_ratio = base.quality;
  const JobReport het = fx.framework.run(Strategy::kHetAware, ds, workload);
  const JobReport green =
      fx.framework.run(Strategy::kHetEnergyAware, ds, workload);

  EXPECT_LT(het.exec_time_s, base.exec_time_s * 0.9);
  EXPECT_LE(green.dirty_energy_j, het.dirty_energy_j * 1.001);
  // Quality preserved: het-aware ratios within a few percent of baseline.
  EXPECT_GT(base_ratio, 1.5);
  EXPECT_NEAR(het.quality, base_ratio, base_ratio * 0.10);
  EXPECT_NEAR(green.quality, base_ratio, base_ratio * 0.10);
}

TEST(Framework, SimilarLayoutCompressesBetterThanRandom) {
  Fixture fx(4, fast_config());
  data::WebGraphConfig gcfg = data::uk_like(0.15);
  const data::Dataset ds = data::generate_graph_corpus(gcfg);
  CompressionWorkload workload(CompressionWorkload::Algorithm::kWebGraph);
  fx.framework.prepare(ds, workload);
  const JobReport strat = fx.framework.run(Strategy::kStratified, ds, workload);
  const JobReport random = fx.framework.run(Strategy::kRandom, ds, workload);
  EXPECT_GT(strat.quality, random.quality)
      << "similar-together partitions must compress better than random";
}

TEST(Framework, Lz77EndToEndRoundTripsQuality) {
  Fixture fx(8, fast_config());
  const data::Dataset ds = data::generate_graph_corpus(data::uk_like(0.1));
  CompressionWorkload workload(CompressionWorkload::Algorithm::kLz77);
  fx.framework.prepare(ds, workload);
  const JobReport base = fx.framework.run(Strategy::kStratified, ds, workload);
  const JobReport het = fx.framework.run(Strategy::kHetAware, ds, workload);
  EXPECT_GT(base.quality, 1.0);
  EXPECT_NEAR(het.quality, base.quality, base.quality * 0.15);
  EXPECT_LE(het.exec_time_s, base.exec_time_s);
}

TEST(Framework, SubtreeMiningEndToEnd) {
  Fixture fx(8, fast_config());
  const data::Dataset ds =
      data::generate_tree_corpus(data::swissprot_like(0.5));
  SubtreeMiningWorkload workload({.min_support = 0.08, .max_pattern_nodes = 3});
  fx.framework.prepare(ds, workload);
  const JobReport base = fx.framework.run(Strategy::kStratified, ds, workload);
  const std::size_t frequent_base = workload.globally_frequent();
  EXPECT_GT(frequent_base, 0u);
  const JobReport het = fx.framework.run(Strategy::kHetAware, ds, workload);
  EXPECT_LT(het.exec_time_s, base.exec_time_s);
  // The global pattern set is partition-invariant.
  EXPECT_EQ(workload.globally_frequent(), frequent_base);
  // SON completeness bookkeeping: union = frequent + false positives.
  EXPECT_EQ(workload.union_candidates(),
            workload.globally_frequent() + workload.false_positives());
}

TEST(Framework, SubtreeWorkloadRejectsNonTreeData) {
  Fixture fx(2, fast_config());
  const data::Dataset docs = data::generate_text_corpus(data::rcv1_like(0.05));
  SubtreeMiningWorkload workload({.min_support = 0.1, .max_pattern_nodes = 2});
  EXPECT_THROW(fx.framework.prepare(docs, workload), common::ConfigError);
}

TEST(Framework, NormalizedAlphaModeRuns) {
  FrameworkConfig cfg = fast_config();
  cfg.normalized_alpha = true;
  cfg.energy_alpha = 0.5;
  Fixture fx(8, cfg);
  const data::Dataset ds = data::generate_text_corpus(data::rcv1_like(0.25));
  PatternMiningWorkload workload({.min_support = 0.1, .max_pattern_length = 2});
  fx.framework.prepare(ds, workload);
  const JobReport het = fx.framework.run(Strategy::kHetAware, ds, workload);
  const JobReport green =
      fx.framework.run(Strategy::kHetEnergyAware, ds, workload);
  // At alpha=0.5 normalized the plans must genuinely differ and energy
  // must not be worse.
  EXPECT_NE(het.partition_sizes, green.partition_sizes);
  EXPECT_LE(green.dirty_energy_j, het.dirty_energy_j + 1e-9);
  // The normalized frontier is available through the framework too.
  const std::vector<double> alphas{1.0, 0.5, 0.0};
  const auto frontier = fx.framework.predicted_frontier(alphas, true);
  EXPECT_EQ(frontier.size(), 3u);
  EXPECT_LE(frontier[2].dirty_joules, frontier[0].dirty_joules + 1e-9);
}

TEST(Framework, DeflateWorkloadEndToEnd) {
  Fixture fx(4, fast_config());
  const data::Dataset ds = data::generate_graph_corpus(data::uk_like(0.1));
  CompressionWorkload workload(CompressionWorkload::Algorithm::kDeflate);
  fx.framework.prepare(ds, workload);
  const JobReport base = fx.framework.run(Strategy::kStratified, ds, workload);
  const JobReport het = fx.framework.run(Strategy::kHetAware, ds, workload);
  EXPECT_GT(base.quality, 1.0);
  EXPECT_LE(het.exec_time_s, base.exec_time_s);
  // The entropy stage should beat plain LZ77's ratio on these payloads.
  CompressionWorkload lz(CompressionWorkload::Algorithm::kLz77);
  fx.framework.prepare(ds, lz);
  const JobReport lz_base = fx.framework.run(Strategy::kStratified, ds, lz);
  EXPECT_GT(base.quality, lz_base.quality);
}

TEST(Framework, DeterministicAcrossIdenticalRuns) {
  const auto run_once = [] {
    Fixture fx(4, fast_config());
    const data::Dataset ds = data::generate_text_corpus(data::rcv1_like(0.15));
    PatternMiningWorkload workload(
        {.min_support = 0.1, .max_pattern_length = 2});
    fx.framework.prepare(ds, workload);
    return fx.framework.run(Strategy::kHetAware, ds, workload);
  };
  const JobReport a = run_once();
  const JobReport b = run_once();
  EXPECT_EQ(a.partition_sizes, b.partition_sizes);
  EXPECT_DOUBLE_EQ(a.exec_time_s, b.exec_time_s);
  EXPECT_DOUBLE_EQ(a.dirty_energy_j, b.dirty_energy_j);
}

TEST(Framework, StrategyNamesAreHuman) {
  EXPECT_EQ(strategy_name(Strategy::kStratified), "Stratified");
  EXPECT_EQ(strategy_name(Strategy::kHetAware), "Het-Aware");
  EXPECT_EQ(strategy_name(Strategy::kHetEnergyAware), "Het-Energy-Aware");
  EXPECT_EQ(strategy_name(Strategy::kRandom), "Random");
}

}  // namespace
}  // namespace hetsim::core

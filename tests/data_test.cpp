// Tests for the data model: item sets, trees + Prüfer codec + pivots,
// graphs, payload codecs, and the synthetic generators.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/graph.h"
#include "data/itemset.h"
#include "data/tree.h"

namespace hetsim::data {
namespace {

TEST(ItemSet, NormalizeSortsAndDedupes) {
  ItemSet s{5, 1, 3, 1, 5};
  normalize(s);
  EXPECT_EQ(s, (ItemSet{1, 3, 5}));
}

TEST(ItemSet, IntersectionAndJaccard) {
  const ItemSet a{1, 2, 3, 4};
  const ItemSet b{3, 4, 5, 6};
  EXPECT_EQ(intersection_size(a, b), 2u);
  EXPECT_DOUBLE_EQ(jaccard(a, b), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(jaccard(a, a), 1.0);
  EXPECT_DOUBLE_EQ(jaccard(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard({}, {}), 1.0);
}

TEST(ItemSet, SubsetChecks) {
  EXPECT_TRUE(is_subset(ItemSet{2, 4}, ItemSet{1, 2, 3, 4}));
  EXPECT_FALSE(is_subset(ItemSet{2, 5}, ItemSet{1, 2, 3, 4}));
  EXPECT_TRUE(is_subset(ItemSet{}, ItemSet{1}));
}

LabeledTree chain(std::uint32_t n) {
  LabeledTree t;
  t.parent.resize(n);
  t.label.resize(n);
  t.parent[0] = 0;
  for (std::uint32_t v = 1; v < n; ++v) t.parent[v] = v - 1;
  for (std::uint32_t v = 0; v < n; ++v) t.label[v] = v;
  return t;
}

TEST(Tree, ValidateAcceptsWellFormed) {
  const LabeledTree t = chain(5);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.root(), 0u);
}

TEST(Tree, ValidateRejectsTwoRoots) {
  LabeledTree t = chain(4);
  t.parent[2] = 2;
  EXPECT_THROW(t.validate(), common::ConfigError);
}

TEST(Tree, ValidateRejectsCycle) {
  LabeledTree t = chain(4);
  t.parent[1] = 3;
  t.parent[3] = 1;  // 1 -> 3 -> 1 cycle, no path to root for 1,2,3
  EXPECT_THROW(t.validate(), common::ConfigError);
}

TEST(Tree, DepthsOnChain) {
  const auto d = node_depths(chain(4));
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(Tree, LcaOnStar) {
  LabeledTree t;
  t.parent = {0, 0, 0, 0};
  t.label = {9, 8, 7, 6};
  const auto d = node_depths(t);
  EXPECT_EQ(lca(t, d, 1, 2), 0u);
  EXPECT_EQ(lca(t, d, 1, 1), 1u);
}

TEST(Tree, LcaOnDeepTree) {
  //      0
  //     / \.
  //    1   2
  //   / \   \.
  //  3   4   5
  LabeledTree t;
  t.parent = {0, 0, 0, 1, 1, 2};
  t.label = {0, 1, 2, 3, 4, 5};
  const auto d = node_depths(t);
  EXPECT_EQ(lca(t, d, 3, 4), 1u);
  EXPECT_EQ(lca(t, d, 3, 5), 0u);
  EXPECT_EQ(lca(t, d, 4, 2), 0u);
  EXPECT_EQ(lca(t, d, 3, 1), 1u);
}

TEST(Prufer, ChainSequenceIsInternalNodes) {
  // Chain 0-1-2-3: removing leaves 3... wait, smallest leaf first: 0's
  // neighbour is 1, then 1's neighbour is 2 -> sequence (1, 2).
  const auto seq = prufer_encode(chain(4));
  EXPECT_EQ(seq, (std::vector<std::uint32_t>{1, 2}));
}

TEST(Prufer, StarSequenceRepeatsCenter) {
  LabeledTree t;
  t.parent = {0, 0, 0, 0, 0};
  t.label = {0, 1, 2, 3, 4};
  const auto seq = prufer_encode(t);
  EXPECT_EQ(seq, (std::vector<std::uint32_t>{0, 0, 0}));
}

/// The Prüfer bijection: decode(encode(t)) must reproduce the same
/// undirected edge set.
std::multiset<std::pair<std::uint32_t, std::uint32_t>> edge_set(
    const LabeledTree& t) {
  std::multiset<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::uint32_t root = t.root();
  for (std::uint32_t v = 0; v < t.size(); ++v) {
    if (v == root) continue;
    edges.insert({std::min(v, t.parent[v]), std::max(v, t.parent[v])});
  }
  return edges;
}

TEST(Prufer, RoundTripPreservesEdges) {
  common::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t n = 2 + static_cast<std::uint32_t>(rng.bounded(40));
    LabeledTree t;
    t.parent.resize(n);
    t.label.resize(n);
    t.parent[0] = 0;
    for (std::uint32_t v = 1; v < n; ++v) {
      t.parent[v] = static_cast<std::uint32_t>(rng.bounded(v));
      t.label[v] = v;
    }
    const auto seq = prufer_encode(t);
    EXPECT_EQ(seq.size(), n - 2);
    const LabeledTree back = prufer_decode(seq);
    EXPECT_EQ(edge_set(back), edge_set(t)) << "trial " << trial;
  }
}

TEST(Pivots, DeterministicAndLabelSensitive) {
  LabeledTree t = chain(8);
  const ItemSet a = tree_pivots(t);
  const ItemSet b = tree_pivots(t);
  EXPECT_EQ(a, b);
  t.label[3] = 777;  // different labels -> different pivots
  LabeledTree bushy;
  bushy.parent = {0, 0, 0, 1, 1, 2, 2};
  bushy.label = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_NE(tree_pivots(bushy), a);
}

TEST(Pivots, SimilarTreesShareMorePivots) {
  // Two trees with identical shape+labels vs. one with disjoint labels.
  LabeledTree base;
  base.parent = {0, 0, 0, 1, 1, 2, 2};
  base.label = {1, 2, 3, 4, 5, 6, 7};
  LabeledTree same = base;
  LabeledTree different = base;
  for (auto& l : different.label) l += 1000;
  const ItemSet pa = tree_pivots(base);
  const ItemSet pb = tree_pivots(same);
  const ItemSet pc = tree_pivots(different);
  EXPECT_GT(jaccard(pa, pb), 0.99);
  EXPECT_LT(jaccard(pa, pc), 0.01);
}

TEST(Pivots, RespectsMaxPairsCap) {
  const LabeledTree t = chain(64);
  PivotConfig cfg;
  cfg.max_pairs = 5;
  cfg.edge_pivots = false;
  EXPECT_LE(tree_pivots(t, cfg).size(), 5u);
}

TEST(Pivots, SingleNodeTreeStillYieldsAnItem) {
  LabeledTree t;
  t.parent = {0};
  t.label = {42};
  EXPECT_EQ(tree_pivots(t).size(), 1u);
}

TEST(Graph, CsrFromEdgesSortsAndDedupes) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{
      {0, 2}, {0, 1}, {0, 2}, {1, 0}};
  const Graph g(3, edges);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);  // duplicate (0,2) collapsed
  EXPECT_EQ(g.adjacency_pivots(0), (ItemSet{1, 2}));
  EXPECT_EQ(g.adjacency_pivots(2), ItemSet{});
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(Graph, RejectsOutOfRange) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> edges{{0, 7}};
  EXPECT_THROW(Graph(3, edges), common::ConfigError);
}

TEST(PayloadCodec, TreeRoundTrip) {
  const LabeledTree t = chain(6);
  const LabeledTree back = decode_tree(encode_tree(t));
  EXPECT_EQ(back.parent, t.parent);
  EXPECT_EQ(back.label, t.label);
}

TEST(PayloadCodec, ItemsRoundTrip) {
  const ItemSet items{1, 5, 9, 1000000};
  EXPECT_EQ(decode_items(encode_items(items)), items);
  EXPECT_EQ(decode_items(encode_items({})), ItemSet{});
}

TEST(PayloadCodec, RejectsCorruptPayload) {
  std::string blob = encode_items({1, 2, 3});
  blob.resize(blob.size() - 2);
  EXPECT_THROW((void)decode_items(blob), common::StoreError);
}

TEST(Generators, TreeCorpusMatchesConfig) {
  TreeCorpusConfig cfg;
  cfg.num_trees = 100;
  cfg.min_nodes = 10;
  cfg.max_nodes = 20;
  const auto trees = generate_trees(cfg);
  ASSERT_EQ(trees.size(), 100u);
  for (const auto& t : trees) {
    EXPECT_GE(t.size(), 10u);
    EXPECT_LE(t.size(), 20u);
    EXPECT_NO_THROW(t.validate());
  }
}

TEST(Generators, TreeCorpusDeterministic) {
  const TreeCorpusConfig cfg = swissprot_like(0.05);
  const Dataset a = generate_tree_corpus(cfg);
  const Dataset b = generate_tree_corpus(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.records[i].items, b.records[i].items);
    EXPECT_EQ(a.records[i].payload, b.records[i].payload);
  }
}

TEST(Generators, WebGraphHasRequestedShape) {
  WebGraphConfig cfg;
  cfg.num_vertices = 2000;
  cfg.mean_out_degree = 10.0;
  const Graph g = generate_webgraph(cfg);
  EXPECT_EQ(g.num_vertices(), 2000u);
  const double mean_deg =
      static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(mean_deg, 4.0);
  EXPECT_LT(mean_deg, 20.0);
}

TEST(Generators, WebGraphCopyingCreatesSimilarNeighbours) {
  WebGraphConfig cfg;
  cfg.num_vertices = 3000;
  cfg.copy_prob = 0.85;
  cfg.seed = 5;
  const Graph g = generate_webgraph(cfg);
  // Average Jaccard of consecutive same-site vertices should far exceed
  // that of random cross-site pairs.
  common::Rng rng(1);
  double near = 0, far = 0;
  int pairs = 0;
  for (std::uint32_t v = 1; v < 1000; ++v) {
    const ItemSet a = g.adjacency_pivots(v);
    const ItemSet b = g.adjacency_pivots(v - 1);
    const std::uint32_t r = static_cast<std::uint32_t>(
        rng.bounded(g.num_vertices()));
    const ItemSet c = g.adjacency_pivots(r);
    if (a.empty() || b.empty()) continue;
    near += jaccard(a, b);
    far += jaccard(a, c);
    ++pairs;
  }
  ASSERT_GT(pairs, 100);
  EXPECT_GT(near / pairs, 2.0 * (far / pairs));
}

TEST(Generators, TextCorpusTopicalStructure) {
  TextCorpusConfig cfg;
  cfg.num_docs = 500;
  cfg.seed = 3;
  const Dataset ds = generate_text_corpus(cfg);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_EQ(ds.kind, DataKind::kDocument);
  EXPECT_EQ(ds.universe, cfg.vocab_size);
  for (const auto& r : ds.records) {
    EXPECT_FALSE(r.items.empty());
    // Items normalized: sorted unique.
    for (std::size_t i = 1; i < r.items.size(); ++i) {
      EXPECT_LT(r.items[i - 1], r.items[i]);
    }
    // Payload decodes back to the same set.
    EXPECT_EQ(decode_items(r.payload), r.items);
  }
}

TEST(Generators, DatasetAccountingConsistent) {
  const Dataset ds = generate_text_corpus(rcv1_like(0.02));
  std::uint64_t items = 0, bytes = 0;
  for (const auto& r : ds.records) {
    items += r.items.size();
    bytes += r.payload.size();
  }
  EXPECT_EQ(ds.total_items(), items);
  EXPECT_EQ(ds.total_payload_bytes(), bytes);
}

TEST(Generators, GraphDatasetRecordsAreVertices) {
  WebGraphConfig cfg;
  cfg.num_vertices = 500;
  const Graph g = generate_webgraph(cfg);
  const Dataset ds = make_graph_dataset("g", g);
  ASSERT_EQ(ds.size(), 500u);
  EXPECT_EQ(ds.records[42].items, g.adjacency_pivots(42));
  EXPECT_EQ(decode_items(ds.records[42].payload), g.adjacency_pivots(42));
}

TEST(Generators, PresetsScale) {
  EXPECT_EQ(generate_tree_corpus(swissprot_like(0.1)).size(), 150u);
  EXPECT_EQ(generate_text_corpus(rcv1_like(0.1)).size(), 600u);
}

}  // namespace
}  // namespace hetsim::data

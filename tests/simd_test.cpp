// Tests for the runtime-dispatched vector layer: ISA selection, the
// arena allocator, randomized kernel equivalence against the scalar
// reference, byte-identity of sketches and k-modes assignments across
// every runnable ISA, and a golden sketch fixture pinning the exact
// permutation arithmetic against accidental drift.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/rng.h"
#include "data/dataset.h"
#include "simd/simd.h"
#include "sketch/minhash.h"
#include "stratify/kmodes.h"

namespace hetsim {
namespace {

using simd::Isa;
using simd::kPrime61;

std::vector<Isa> runnable_isas() {
  std::vector<Isa> out{Isa::kScalar};
  for (const Isa isa : {Isa::kAvx2, Isa::kNeon}) {
    if (simd::isa_supported(isa)) out.push_back(isa);
  }
  return out;
}

TEST(SimdDispatch, ScalarIsAlwaysRunnable) {
  EXPECT_TRUE(simd::isa_supported(Isa::kScalar));
  EXPECT_EQ(simd::kernels_for(Isa::kScalar).isa, Isa::kScalar);
  EXPECT_TRUE(simd::isa_supported(simd::best_isa()));
}

TEST(SimdDispatch, OverrideForcesAndRestores) {
  const Isa ambient = simd::active_isa();
  {
    simd::ScopedIsaOverride forced(Isa::kScalar);
    EXPECT_EQ(simd::active_isa(), Isa::kScalar);
    EXPECT_EQ(simd::dispatch().isa, Isa::kScalar);
    {
      simd::ScopedIsaOverride nested(simd::best_isa());
      EXPECT_EQ(simd::active_isa(), simd::best_isa());
    }
    EXPECT_EQ(simd::active_isa(), Isa::kScalar);
  }
  EXPECT_EQ(simd::active_isa(), ambient);
}

TEST(SimdDispatch, IsaNamesAreStable) {
  EXPECT_EQ(simd::isa_name(Isa::kScalar), "scalar");
  EXPECT_EQ(simd::isa_name(Isa::kAvx2), "avx2");
  EXPECT_EQ(simd::isa_name(Isa::kNeon), "neon");
}

TEST(Arena, SpansStayValidUntilReset) {
  common::Arena arena(64);  // small first block forces growth
  std::vector<std::span<std::uint64_t>> spans;
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto s = arena.alloc_span<std::uint64_t>(16);
    std::fill(s.begin(), s.end(), i);
    spans.push_back(s);
  }
  // Growth must never have moved an earlier span's storage.
  for (std::uint64_t i = 0; i < spans.size(); ++i) {
    for (const std::uint64_t v : spans[i]) EXPECT_EQ(v, i);
  }
}

TEST(Arena, ResetKeepsOneBlockAndReusesIt) {
  common::Arena arena(64);
  (void)arena.alloc_span<std::uint64_t>(512);
  const std::size_t grown = arena.capacity_bytes();
  arena.reset();
  EXPECT_LE(arena.capacity_bytes(), grown);
  const void* first = arena.alloc_span<std::byte>(64).data();
  arena.reset();
  const void* second = arena.alloc_span<std::byte>(64).data();
  EXPECT_EQ(first, second);  // steady state: same block, no malloc
}

TEST(Arena, HonorsAlignment) {
  common::Arena arena;
  (void)arena.alloc_span<char>(3);  // misalign the bump cursor
  const auto d = arena.alloc_span<double>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
  const auto z = arena.alloc_span<std::uint64_t>(0);
  EXPECT_TRUE(z.empty());
}

// Scalar reference for the min-run kernel, written independently of the
// kernel implementations (plain loop over simd::permute61).
std::uint64_t reference_min_run(std::uint64_t a, std::uint64_t b,
                                const std::vector<std::uint64_t>& items,
                                std::uint64_t acc) {
  std::uint64_t best = acc;
  for (const std::uint64_t x : items) {
    best = std::min(best, simd::permute61(a, b, x + 1));
  }
  return best;
}

TEST(SimdKernels, MinRunMatchesReferenceOnEveryIsa) {
  common::Rng rng(11);
  for (const Isa isa : runnable_isas()) {
    const simd::Kernels& kern = simd::kernels_for(isa);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint64_t> items(rng.bounded(70));
      for (auto& x : items) x = rng.bounded(1ULL << 32);
      if (!items.empty()) {
        // Plant the extremes: item 2^32−1 overflows a naive 32-bit x+1
        // staging, item 0 exercises the +1 offset.
        items[rng.bounded(items.size())] = 0xffffffffULL;
        items[rng.bounded(items.size())] = 0;
      }
      const std::uint64_t a = 1 + rng.bounded(kPrime61 - 1);
      const std::uint64_t b = rng.bounded(kPrime61);
      const std::uint64_t acc = trial % 3 == 0 ? ~0ULL : rng.bounded(kPrime61);
      EXPECT_EQ(kern.minhash_min_run(a, b, items.data(), items.size(), acc),
                reference_min_run(a, b, items, acc))
          << simd::isa_name(isa) << " trial " << trial;
    }
  }
}

TEST(SimdKernels, EqualCountMatchesReferenceOnEveryIsa) {
  common::Rng rng(12);
  for (const Isa isa : runnable_isas()) {
    const simd::Kernels& kern = simd::kernels_for(isa);
    for (int trial = 0; trial < 100; ++trial) {
      const std::size_t n = rng.bounded(130);
      std::vector<std::uint64_t> a(n);
      std::vector<std::uint64_t> b(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Bias toward collisions and include the all-ones sentinel.
        a[i] = rng.bounded(4) == 0 ? ~0ULL : rng.bounded(8);
        b[i] = rng.bounded(2) == 0 ? a[i] : rng.bounded(8);
      }
      std::size_t want = 0;
      for (std::size_t i = 0; i < n; ++i) want += a[i] == b[i] ? 1 : 0;
      EXPECT_EQ(kern.equal_count_u64(a.data(), b.data(), n), want)
          << simd::isa_name(isa) << " trial " << trial;
    }
  }
}

TEST(SimdKernels, FindSortedMatchesReferenceOnEveryIsa) {
  common::Rng rng(13);
  for (const Isa isa : runnable_isas()) {
    const simd::Kernels& kern = simd::kernels_for(isa);
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint64_t> vals(rng.bounded(200));
      for (auto& v : vals) v = rng.bounded(1ULL << 62);
      if (!vals.empty() && trial % 4 == 0) vals.back() = ~0ULL;  // sentinel
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
      const auto len = static_cast<std::uint32_t>(vals.size());
      // Probe every present value plus absent ones (including ~0).
      for (std::uint32_t i = 0; i < len; ++i) {
        EXPECT_EQ(kern.find_sorted_u64(vals.data(), len, vals[i]),
                  static_cast<std::int64_t>(i))
            << simd::isa_name(isa) << " trial " << trial;
      }
      for (int probe = 0; probe < 8; ++probe) {
        const std::uint64_t want =
            probe == 0 ? ~0ULL : rng.bounded(1ULL << 62);
        const auto it = std::find(vals.begin(), vals.end(), want);
        const std::int64_t expect =
            it == vals.end() ? -1 : it - vals.begin();
        EXPECT_EQ(kern.find_sorted_u64(vals.data(), len, want), expect)
            << simd::isa_name(isa) << " trial " << trial;
      }
    }
  }
}

std::vector<data::Record> random_records(common::Rng& rng, std::size_t n) {
  std::vector<data::Record> records(n);
  for (auto& r : records) {
    r.items.resize(rng.bounded(60));
    for (auto& x : r.items) {
      x = static_cast<data::Item>(rng.bounded(1ULL << 32));
    }
    std::sort(r.items.begin(), r.items.end());
    r.items.erase(std::unique(r.items.begin(), r.items.end()), r.items.end());
  }
  return records;
}

TEST(SimdEquivalence, SketchesAreByteIdenticalAcrossIsas) {
  common::Rng rng(14);
  const std::vector<data::Record> records = random_records(rng, 200);
  const sketch::MinHasher hasher({.num_hashes = 48, .seed = 99});

  std::vector<sketch::Sketch> baseline;
  {
    simd::ScopedIsaOverride forced(Isa::kScalar);
    baseline = hasher.sketch_all(records);
  }
  for (const Isa isa : runnable_isas()) {
    simd::ScopedIsaOverride forced(isa);
    EXPECT_EQ(hasher.sketch_all(records), baseline) << simd::isa_name(isa);
  }
}

TEST(SimdEquivalence, JaccardIsIdenticalAcrossIsas) {
  common::Rng rng(15);
  const std::vector<data::Record> records = random_records(rng, 40);
  const sketch::MinHasher hasher({.num_hashes = 64, .seed = 7});
  const std::vector<sketch::Sketch> sketches = hasher.sketch_all(records);
  std::vector<double> baseline;
  {
    simd::ScopedIsaOverride forced(Isa::kScalar);
    for (std::size_t i = 1; i < sketches.size(); ++i) {
      baseline.push_back(
          sketch::MinHasher::estimate_jaccard(sketches[0], sketches[i]));
    }
  }
  for (const Isa isa : runnable_isas()) {
    simd::ScopedIsaOverride forced(isa);
    for (std::size_t i = 1; i < sketches.size(); ++i) {
      EXPECT_EQ(sketch::MinHasher::estimate_jaccard(sketches[0], sketches[i]),
                baseline[i - 1])
          << simd::isa_name(isa);
    }
  }
}

TEST(SimdEquivalence, KModesAssignmentsAreIdenticalAcrossIsas) {
  common::Rng rng(16);
  const std::vector<data::Record> records = random_records(rng, 300);
  const sketch::MinHasher hasher({.num_hashes = 32, .seed = 3});
  const std::vector<sketch::Sketch> sketches = hasher.sketch_all(records);
  stratify::KModesConfig config;
  config.num_strata = 8;
  config.composite_l = 3;

  stratify::Stratification baseline;
  {
    simd::ScopedIsaOverride forced(Isa::kScalar);
    baseline = stratify::composite_kmodes(sketches, config);
  }
  for (const Isa isa : runnable_isas()) {
    simd::ScopedIsaOverride forced(isa);
    const stratify::Stratification got =
        stratify::composite_kmodes(sketches, config);
    EXPECT_EQ(got.assignment, baseline.assignment) << simd::isa_name(isa);
    EXPECT_EQ(got.objective, baseline.objective) << simd::isa_name(isa);
    EXPECT_EQ(got.iterations, baseline.iterations) << simd::isa_name(isa);
  }
}

// Golden fixture: pins the exact permutation arithmetic. If any lane —
// or a future refactor of the scalar path — changes a single output
// bit, this fails without needing a second ISA present to diff against.
TEST(SimdEquivalence, GoldenSketchFixture) {
  const sketch::MinHasher hasher({.num_hashes = 4, .seed = 17});
  const std::vector<data::Item> items{0, 1, 42, 4096, 0xffffffffU};
  const sketch::Sketch got =
      hasher.sketch(std::span<const data::Item>(items));
  const sketch::Sketch want = {
      119881662275500721ULL,
      227810495014918211ULL,
      443241455915740102ULL,
      52479995371912899ULL,
  };
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace hetsim

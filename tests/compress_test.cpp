// Tests for bit I/O, the integer codes, LZ77 round trips, and the
// BV-style webgraph codec — including the property that similar
// neighbour lists compress better, which motivates the SimilarTogether
// partition layout.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "compress/bitio.h"
#include "compress/lz77.h"
#include "compress/webgraph.h"
#include "data/generators.h"

namespace hetsim::compress {
namespace {

TEST(BitIo, BitsRoundTrip) {
  BitWriter w;
  w.write_bits(0b1011, 4);
  w.write_bits(0, 1);
  w.write_bits(0xdeadbeef, 32);
  const std::string buf = w.finish();
  BitReader r(buf);
  EXPECT_EQ(r.read_bits(4), 0b1011u);
  EXPECT_EQ(r.read_bits(1), 0u);
  EXPECT_EQ(r.read_bits(32), 0xdeadbeefu);
}

TEST(BitIo, UnaryRoundTrip) {
  BitWriter w;
  for (const std::uint32_t n : {0u, 1u, 7u, 40u, 100u}) w.write_unary(n);
  const std::string buf = w.finish();
  BitReader r(buf);
  for (const std::uint32_t n : {0u, 1u, 7u, 40u, 100u}) {
    EXPECT_EQ(r.read_unary(), n);
  }
}

TEST(BitIo, GammaRoundTrip) {
  BitWriter w;
  std::vector<std::uint64_t> values{1, 2, 3, 7, 8, 100, 65535, 1000000007ULL};
  for (const auto v : values) w.write_gamma(v);
  const std::string buf = w.finish();
  BitReader r(buf);
  for (const auto v : values) EXPECT_EQ(r.read_gamma(), v);
}

TEST(BitIo, ZetaRoundTripAcrossK) {
  for (std::uint32_t k = 1; k <= 5; ++k) {
    BitWriter w;
    std::vector<std::uint64_t> values{1, 2, 9, 31, 32, 1000, 123456789ULL};
    for (const auto v : values) w.write_zeta(v, k);
    const std::string buf = w.finish();
    BitReader r(buf);
    for (const auto v : values) EXPECT_EQ(r.read_zeta(k), v) << "k=" << k;
  }
}

TEST(BitIo, GammaIsPrefixFreeUnderConcatenation) {
  common::Rng rng(9);
  std::vector<std::uint64_t> values;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = 1 + rng.bounded(1 << 20);
    values.push_back(v);
    w.write_gamma(v);
  }
  const std::string buf = w.finish();
  BitReader r(buf);
  for (const auto v : values) ASSERT_EQ(r.read_gamma(), v);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter w;
  w.write_bits(1, 1);
  const std::string buf = w.finish();
  BitReader r(buf);
  (void)r.read_bits(8);  // padding makes one byte available
  EXPECT_THROW((void)r.read_bits(8), common::StoreError);
}

TEST(BitIo, RejectsInvalidCodes) {
  BitWriter w;
  EXPECT_THROW(w.write_gamma(0), common::ConfigError);
  EXPECT_THROW(w.write_zeta(0, 2), common::ConfigError);
  EXPECT_THROW(w.write_zeta(5, 0), common::ConfigError);
}

// ---- LZ77 ------------------------------------------------------------------

TEST(Lz77, RoundTripAssortedInputs) {
  common::Rng rng(21);
  std::vector<std::string> inputs{
      "",
      "a",
      "abcabcabcabcabcabc",
      std::string(10000, 'z'),
      "the quick brown fox jumps over the lazy dog",
  };
  // Random binary blob.
  std::string blob;
  for (int i = 0; i < 5000; ++i) {
    blob.push_back(static_cast<char>(rng.bounded(256)));
  }
  inputs.push_back(blob);
  // Repetitive structured payload.
  std::string rep;
  for (int i = 0; i < 300; ++i) rep += "header|field1|field2|value" + std::to_string(i % 7);
  inputs.push_back(rep);
  for (const auto& input : inputs) {
    const std::string packed = lz77_compress(input);
    EXPECT_EQ(lz77_decompress(packed), input) << "size " << input.size();
  }
}

TEST(Lz77, CompressesRepetitiveData) {
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "abcdefgh";
  Lz77Stats stats;
  const std::string packed = lz77_compress(input, {}, &stats);
  EXPECT_GT(compression_ratio(input.size(), packed.size()), 10.0);
  EXPECT_GT(stats.matches, 0u);
}

TEST(Lz77, RandomDataBarelyExpands) {
  common::Rng rng(33);
  std::string input;
  for (int i = 0; i < 20000; ++i) {
    input.push_back(static_cast<char>(rng.bounded(256)));
  }
  const std::string packed = lz77_compress(input);
  // Flag bytes cost at most 1/8 overhead.
  EXPECT_LT(packed.size(), input.size() * 9 / 8 + 16);
  EXPECT_EQ(lz77_decompress(packed), input);
}

TEST(Lz77, OverlappingMatchHandled) {
  // "aaaa..." forces matches with offset 1 < length.
  const std::string input(500, 'a');
  const std::string packed = lz77_compress(input);
  EXPECT_EQ(lz77_decompress(packed), input);
  EXPECT_LT(packed.size(), 32u);
}

TEST(Lz77, WorkIsNearLinear) {
  std::string small, large;
  common::Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    small.push_back(static_cast<char>('a' + rng.bounded(4)));
  }
  large = small + small + small + small;
  Lz77Stats s1, s4;
  (void)lz77_compress(small, {}, &s1);
  (void)lz77_compress(large, {}, &s4);
  EXPECT_LT(s4.work_ops, s1.work_ops * 8);  // ~4x data -> <8x work
}

TEST(Lz77, MalformedInputThrows) {
  // Flag byte claims a match but the stream is truncated.
  std::string bad;
  bad.push_back(static_cast<char>(0x01));
  bad.push_back('\x05');
  EXPECT_THROW((void)lz77_decompress(bad), common::StoreError);
  // Match offset beyond produced output.
  std::string bad2;
  bad2.push_back(static_cast<char>(0x01));
  bad2.push_back('\xff');
  bad2.push_back('\x00');
  bad2.push_back('\x04');
  EXPECT_THROW((void)lz77_decompress(bad2), common::StoreError);
}

TEST(Lz77, RejectsBadConfig) {
  Lz77Config bad;
  bad.window = 1 << 20;  // > 65535
  EXPECT_THROW((void)lz77_compress("abc", bad), common::ConfigError);
}

// ---- webgraph --------------------------------------------------------------

std::vector<std::vector<std::uint32_t>> sample_lists() {
  return {
      {1, 2, 3, 10, 20},
      {1, 2, 3, 10, 21},   // near-copy of previous
      {1, 2, 3, 10, 20, 22},
      {},
      {5},
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
  };
}

TEST(WebGraph, RoundTrip) {
  const auto lists = sample_lists();
  WebGraphStats stats;
  const std::string blob = compress_adjacency(lists, {}, &stats);
  EXPECT_EQ(decompress_adjacency(blob, lists.size()), lists);
  EXPECT_EQ(stats.lists, lists.size());
  EXPECT_EQ(stats.edges, 27u);
}

TEST(WebGraph, RoundTripOnGeneratedGraph) {
  data::WebGraphConfig cfg;
  cfg.num_vertices = 1500;
  cfg.seed = 17;
  const data::Graph g = data::generate_webgraph(cfg);
  std::vector<std::vector<std::uint32_t>> lists;
  lists.reserve(g.num_vertices());
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    lists.emplace_back(nb.begin(), nb.end());
  }
  const std::string blob = compress_adjacency(lists);
  EXPECT_EQ(decompress_adjacency(blob, lists.size()), lists);
  // Copying-model graphs must compress well below raw.
  EXPECT_GT(compression_ratio(raw_adjacency_bytes(lists), blob.size()), 2.0);
}

TEST(WebGraph, ReferencesUsedForSimilarLists) {
  const auto lists = sample_lists();
  WebGraphStats stats;
  (void)compress_adjacency(lists, {}, &stats);
  EXPECT_GT(stats.referenced_lists, 0u);
  EXPECT_GT(stats.copied_edges, 0u);
}

TEST(WebGraph, SimilarOrderingCompressesBetterThanScattered) {
  // Two blocks of similar lists; ordering by block (similar together)
  // must beat interleaving them.
  std::vector<std::vector<std::uint32_t>> grouped, interleaved;
  common::Rng rng(3);
  std::vector<std::vector<std::uint32_t>> block_a, block_b;
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint32_t> a{10, 11, 12, 13, 14, 15};
    std::vector<std::uint32_t> b{500, 600, 700, 800, 900, 1000};
    a.push_back(20 + static_cast<std::uint32_t>(rng.bounded(3)));
    b.push_back(1100 + static_cast<std::uint32_t>(rng.bounded(3)));
    data::normalize(a);
    data::normalize(b);
    block_a.push_back(a);
    block_b.push_back(b);
  }
  for (int i = 0; i < 50; ++i) grouped.push_back(block_a[i]);
  for (int i = 0; i < 50; ++i) grouped.push_back(block_b[i]);
  for (int i = 0; i < 50; ++i) {
    interleaved.push_back(block_a[i]);
    interleaved.push_back(block_b[i]);
  }
  WebGraphCodecConfig cfg;
  cfg.ref_window = 1;  // tight window makes ordering matter
  const std::string g = compress_adjacency(grouped, cfg);
  const std::string x = compress_adjacency(interleaved, cfg);
  EXPECT_LT(g.size(), x.size());
  EXPECT_EQ(decompress_adjacency(g, grouped.size(), cfg), grouped);
  EXPECT_EQ(decompress_adjacency(x, interleaved.size(), cfg), interleaved);
}

TEST(WebGraph, DisablingReferencesStillRoundTrips) {
  const auto lists = sample_lists();
  WebGraphCodecConfig cfg;
  cfg.ref_window = 0;
  WebGraphStats stats;
  const std::string blob = compress_adjacency(lists, cfg, &stats);
  EXPECT_EQ(decompress_adjacency(blob, lists.size(), cfg), lists);
  EXPECT_EQ(stats.referenced_lists, 0u);
}

TEST(WebGraph, RejectsUnsortedLists) {
  const std::vector<std::vector<std::uint32_t>> bad{{3, 1, 2}};
  EXPECT_THROW((void)compress_adjacency(bad), common::ConfigError);
  const std::vector<std::vector<std::uint32_t>> dup{{1, 1, 2}};
  EXPECT_THROW((void)compress_adjacency(dup), common::ConfigError);
}

TEST(WebGraph, IntervalsRoundTrip) {
  // Lists with long consecutive runs plus scattered singletons.
  const std::vector<std::vector<std::uint32_t>> lists{
      {0, 1, 2, 3, 4, 100, 200, 300},
      {5, 6, 7, 8, 9, 10, 11, 50},
      {},
      {42},
      {10, 11, 12, 13, 20, 21, 22, 23, 99},
  };
  for (const std::uint32_t min_interval : {2u, 3u, 4u, 8u}) {
    compress::WebGraphCodecConfig cfg;
    cfg.min_interval = min_interval;
    const std::string blob = compress_adjacency(lists, cfg);
    EXPECT_EQ(decompress_adjacency(blob, lists.size(), cfg), lists)
        << "min_interval " << min_interval;
  }
}

TEST(WebGraph, IntervalsShrinkConsecutiveRuns) {
  // Pages linking to big consecutive ranges: intervalization must win.
  std::vector<std::vector<std::uint32_t>> lists;
  for (std::uint32_t i = 0; i < 200; ++i) {
    std::vector<std::uint32_t> run;
    for (std::uint32_t v = i * 7; v < i * 7 + 30; ++v) run.push_back(v);
    lists.push_back(std::move(run));
  }
  compress::WebGraphCodecConfig plain;
  plain.ref_window = 0;
  compress::WebGraphCodecConfig intervals = plain;
  intervals.min_interval = 3;
  const std::string a = compress_adjacency(lists, plain);
  const std::string b = compress_adjacency(lists, intervals);
  EXPECT_LT(b.size(), a.size() / 3);
  EXPECT_EQ(decompress_adjacency(b, lists.size(), intervals), lists);
}

TEST(WebGraph, IntervalsWithReferencesRoundTrip) {
  data::WebGraphConfig gcfg;
  gcfg.num_vertices = 1000;
  gcfg.seed = 23;
  const data::Graph g = data::generate_webgraph(gcfg);
  std::vector<std::vector<std::uint32_t>> lists;
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    const auto nb = g.neighbors(v);
    lists.emplace_back(nb.begin(), nb.end());
  }
  compress::WebGraphCodecConfig cfg;
  cfg.min_interval = 4;
  const std::string blob = compress_adjacency(lists, cfg);
  EXPECT_EQ(decompress_adjacency(blob, lists.size(), cfg), lists);
}

TEST(WebGraph, LargeIdsSupported) {
  const std::vector<std::vector<std::uint32_t>> lists{
      {0xfffffff0u, 0xfffffff5u, 0xfffffffeu}};
  const std::string blob = compress_adjacency(lists);
  EXPECT_EQ(decompress_adjacency(blob, 1), lists);
}

}  // namespace
}  // namespace hetsim::compress

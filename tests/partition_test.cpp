// Tests for the data partitioner: both layouts, baselines, exact size
// compliance, disjointness/coverage invariants, and the statistical
// properties each layout promises.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "partition/partitioner.h"
#include "stratify/kmodes.h"

namespace hetsim::partition {
namespace {

stratify::Stratification make_strat(std::vector<std::uint32_t> assignment,
                                    std::uint32_t k) {
  stratify::Stratification s;
  s.assignment = std::move(assignment);
  s.num_strata = k;
  s.stratum_sizes.assign(k, 0);
  for (const auto a : s.assignment) ++s.stratum_sizes[a];
  return s;
}

/// Stratification with `per_stratum` records in each of `k` strata,
/// interleaved so record order doesn't trivially align with strata.
stratify::Stratification interleaved(std::uint32_t k, std::uint32_t per_stratum) {
  std::vector<std::uint32_t> assignment(k * per_stratum);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = static_cast<std::uint32_t>(i % k);
  }
  return make_strat(std::move(assignment), k);
}

void check_disjoint_cover(const PartitionAssignment& pa, std::size_t n) {
  std::set<std::uint32_t> seen;
  for (const auto& part : pa.partitions) {
    for (const auto i : part) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate record " << i;
      EXPECT_LT(i, n);
    }
  }
  EXPECT_EQ(seen.size(), n);
}

TEST(Partitioner, RepresentativeRespectsSizesExactly) {
  const auto strat = interleaved(5, 40);  // 200 records
  const std::vector<std::size_t> sizes{70, 60, 40, 30};
  const auto pa = make_partitions(strat, sizes, Layout::kRepresentative);
  ASSERT_EQ(pa.partitions.size(), 4u);
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    EXPECT_EQ(pa.partitions[p].size(), sizes[p]);
  }
  check_disjoint_cover(pa, 200);
}

TEST(Partitioner, RepresentativePartitionsMirrorGlobalMix) {
  const auto strat = interleaved(4, 100);  // 400 records, uniform strata
  const std::vector<std::size_t> sizes{160, 120, 80, 40};
  const auto pa = make_partitions(strat, sizes, Layout::kRepresentative);
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    EXPECT_LT(representativeness_l1(pa, p, strat), 0.15)
        << "partition " << p << " deviates from the global stratum mix";
  }
}

TEST(Partitioner, RepresentativeBeatsSimilarOnRepresentativeness) {
  const auto strat = interleaved(4, 100);
  const std::vector<std::size_t> sizes{100, 100, 100, 100};
  const auto rep = make_partitions(strat, sizes, Layout::kRepresentative);
  const auto sim = make_partitions(strat, sizes, Layout::kSimilarTogether);
  double rep_dev = 0, sim_dev = 0;
  for (std::size_t p = 0; p < 4; ++p) {
    rep_dev += representativeness_l1(rep, p, strat);
    sim_dev += representativeness_l1(sim, p, strat);
  }
  EXPECT_LT(rep_dev, sim_dev / 2.0);
}

TEST(Partitioner, SimilarTogetherKeepsStrataContiguous) {
  const auto strat = interleaved(4, 25);  // 100 records, strata of 25
  const std::vector<std::size_t> sizes{25, 25, 25, 25};
  const auto pa = make_partitions(strat, sizes, Layout::kSimilarTogether);
  check_disjoint_cover(pa, 100);
  // Sizes match strata here, so each partition must be pure.
  for (std::size_t p = 0; p < 4; ++p) {
    const auto hist = pa.stratum_histogram(p, strat);
    std::size_t nonzero = 0;
    for (const auto h : hist) {
      if (h > 0) ++nonzero;
    }
    EXPECT_EQ(nonzero, 1u) << "partition " << p << " mixes strata";
  }
}

TEST(Partitioner, SimilarTogetherMinimizesStrataSpread) {
  const auto strat = interleaved(8, 25);  // 200 records
  const std::vector<std::size_t> sizes{80, 60, 40, 20};
  const auto pa = make_partitions(strat, sizes, Layout::kSimilarTogether);
  check_disjoint_cover(pa, 200);
  // A chunk of size s crossing strata of size 25 touches at most
  // ceil(s/25) + 1 strata.
  for (std::size_t p = 0; p < sizes.size(); ++p) {
    const auto hist = pa.stratum_histogram(p, strat);
    std::size_t touched = 0;
    for (const auto h : hist) {
      if (h > 0) ++touched;
    }
    EXPECT_LE(touched, sizes[p] / 25 + 2);
  }
}

TEST(Partitioner, ZeroSizedPartitionsAllowed) {
  const auto strat = interleaved(2, 10);
  const std::vector<std::size_t> sizes{20, 0};
  for (const Layout layout :
       {Layout::kRepresentative, Layout::kSimilarTogether}) {
    const auto pa = make_partitions(strat, sizes, layout);
    EXPECT_EQ(pa.partitions[0].size(), 20u);
    EXPECT_TRUE(pa.partitions[1].empty());
  }
}

TEST(Partitioner, DeterministicForSeed) {
  const auto strat = interleaved(4, 50);
  const std::vector<std::size_t> sizes{120, 50, 20, 10};
  const auto a = make_partitions(strat, sizes, Layout::kRepresentative, 7);
  const auto b = make_partitions(strat, sizes, Layout::kRepresentative, 7);
  const auto c = make_partitions(strat, sizes, Layout::kRepresentative, 8);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(a.partitions[p], b.partitions[p]);
  }
  // Different seed shuffles stratum pools differently.
  bool any_diff = false;
  for (std::size_t p = 0; p < 4; ++p) {
    if (a.partitions[p] != c.partitions[p]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Partitioner, RandomPartitionsCoverEverything) {
  const std::vector<std::size_t> sizes{33, 33, 34};
  const auto pa = random_partitions(100, sizes);
  check_disjoint_cover(pa, 100);
  EXPECT_EQ(pa.total_records(), 100u);
}

TEST(Partitioner, RejectsSizeMismatch) {
  const auto strat = interleaved(2, 10);
  const std::vector<std::size_t> wrong{5, 5};
  EXPECT_THROW((void)make_partitions(strat, wrong, Layout::kRepresentative),
               common::ConfigError);
  EXPECT_THROW((void)random_partitions(100, wrong), common::ConfigError);
}

TEST(Partitioner, HistogramCountsMatchPartitionSize) {
  const auto strat = interleaved(3, 30);
  const std::vector<std::size_t> sizes{45, 45};
  const auto pa = make_partitions(strat, sizes, Layout::kRepresentative);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto hist = pa.stratum_histogram(p, strat);
    EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), std::size_t{0}),
              pa.partitions[p].size());
  }
}

TEST(Partitioner, SkewedStrataStillCoverEverything) {
  // One giant stratum, several tiny ones.
  std::vector<std::uint32_t> assignment(200, 0);
  for (int i = 0; i < 5; ++i) assignment[i] = 1 + (i % 3);
  const auto strat = make_strat(std::move(assignment), 4);
  const std::vector<std::size_t> sizes{90, 60, 30, 20};
  for (const Layout layout :
       {Layout::kRepresentative, Layout::kSimilarTogether}) {
    const auto pa = make_partitions(strat, sizes, layout);
    check_disjoint_cover(pa, 200);
    for (std::size_t p = 0; p < sizes.size(); ++p) {
      EXPECT_EQ(pa.partitions[p].size(), sizes[p]);
    }
  }
}

}  // namespace
}  // namespace hetsim::partition

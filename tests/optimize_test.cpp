// Tests for the simplex solver and the Pareto partition model, including
// the cross-check between the LP at alpha=1 and closed-form water-filling
// and the Pareto dominance property of the frontier sweep.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "optimize/pareto.h"
#include "optimize/simplex.h"

namespace hetsim::optimize {
namespace {

TEST(Simplex, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (Dantzig example)
  // == min -3x - 5y; optimum x=2, y=6, objective -36.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-3, -5};
  p.add_constraint({1, 0}, Relation::kLe, 4);
  p.add_constraint({0, 2}, Relation::kLe, 12);
  p.add_constraint({3, 2}, Relation::kLe, 18);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 6.0, 1e-9);
  EXPECT_NEAR(s.objective, -36.0, 1e-9);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + 2y s.t. x + y = 10, x <= 4 -> x=4, y=6, objective 16.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1, 2};
  p.add_constraint({1, 1}, Relation::kEq, 10);
  p.add_constraint({1, 0}, Relation::kLe, 4);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 6.0, 1e-9);
}

TEST(Simplex, HandlesGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 5, x >= 0, y >= 0 -> x=5, y=0.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {2, 3};
  p.add_constraint({1, 1}, Relation::kGe, 5);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 5.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
  EXPECT_NEAR(s.objective, 10.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1};
  p.add_constraint({1}, Relation::kLe, 1);
  p.add_constraint({1}, Relation::kGe, 2);
  EXPECT_EQ(solve_lp(p).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {-1};  // maximize x with no upper bound
  p.add_constraint({1}, Relation::kGe, 0);
  EXPECT_EQ(solve_lp(p).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalized) {
  // min x s.t. -x <= -3  (i.e. x >= 3).
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1};
  p.add_constraint({-1}, Relation::kLe, -3);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.x[0], 3.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints produce degeneracy; Bland's rule must
  // still terminate.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-1, -1};
  p.add_constraint({1, 1}, Relation::kLe, 1);
  p.add_constraint({1, 1}, Relation::kLe, 1);
  p.add_constraint({2, 2}, Relation::kLe, 2);
  p.add_constraint({1, 0}, Relation::kLe, 1);
  const LpSolution s = solve_lp(p);
  ASSERT_EQ(s.status, LpStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-9);
}

TEST(Simplex, RejectsArityMismatch) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1};
  EXPECT_THROW((void)solve_lp(p), common::ConfigError);
}

// ---- Pareto model ----------------------------------------------------------

std::vector<NodeModel> standard_models() {
  // Four-node cluster mirroring speeds 4/3/2/1: slope inversely
  // proportional to speed; dirty rates differ per node.
  return {
      NodeModel{.slope = 1e-4, .intercept = 0.1, .dirty_rate = 300.0},
      NodeModel{.slope = 1.33e-4, .intercept = 0.1, .dirty_rate = 200.0},
      NodeModel{.slope = 2e-4, .intercept = 0.1, .dirty_rate = 100.0},
      NodeModel{.slope = 4e-4, .intercept = 0.1, .dirty_rate = 50.0},
  };
}

TEST(Pareto, SizesSumToTotal) {
  const auto models = standard_models();
  for (const double alpha : {1.0, 0.999, 0.9, 0.5, 0.0}) {
    const PartitionPlan plan = solve_partition_sizes(models, 10001, alpha);
    EXPECT_EQ(std::accumulate(plan.sizes.begin(), plan.sizes.end(),
                              std::size_t{0}),
              10001u)
        << "alpha " << alpha;
  }
}

TEST(Pareto, AlphaOneMatchesWaterFilling) {
  const auto models = standard_models();
  const PartitionPlan lp = solve_partition_sizes(models, 50000, 1.0);
  const PartitionPlan wf = waterfill_makespan(models, 50000);
  EXPECT_NEAR(lp.predicted_makespan_s, wf.predicted_makespan_s, 1e-6);
  for (std::size_t i = 0; i < models.size(); ++i) {
    EXPECT_NEAR(lp.continuous[i], wf.continuous[i],
                1e-4 * (wf.continuous[i] + 1.0));
  }
}

TEST(Pareto, AlphaOneEqualizesFinishTimes) {
  const auto models = standard_models();
  const PartitionPlan plan = solve_partition_sizes(models, 100000, 1.0);
  std::vector<double> finish;
  for (std::size_t i = 0; i < models.size(); ++i) {
    finish.push_back(models[i].time_s(plan.continuous[i]));
  }
  for (const double f : finish) {
    EXPECT_NEAR(f, plan.predicted_makespan_s, 1e-6);
  }
}

TEST(Pareto, FasterNodesGetMoreWork) {
  const auto models = standard_models();
  const PartitionPlan plan = solve_partition_sizes(models, 100000, 1.0);
  EXPECT_GT(plan.sizes[0], plan.sizes[1]);
  EXPECT_GT(plan.sizes[1], plan.sizes[2]);
  EXPECT_GT(plan.sizes[2], plan.sizes[3]);
}

TEST(Pareto, HetAwareBeatsEqualSplitOnMakespan) {
  const auto models = standard_models();
  const PartitionPlan het = solve_partition_sizes(models, 100000, 1.0);
  const PartitionPlan eq = equal_split(models, 100000);
  EXPECT_LT(het.predicted_makespan_s, eq.predicted_makespan_s * 0.75);
}

TEST(Pareto, LowAlphaShiftsLoadToCleanNodes) {
  const auto models = standard_models();  // node 3 is cleanest
  const PartitionPlan fast = solve_partition_sizes(models, 100000, 1.0);
  const PartitionPlan green = solve_partition_sizes(models, 100000, 0.5);
  EXPECT_GT(green.sizes[3], fast.sizes[3]);
  EXPECT_LE(green.predicted_dirty_joules, fast.predicted_dirty_joules);
  EXPECT_GE(green.predicted_makespan_s, fast.predicted_makespan_s);
}

TEST(Pareto, FrontierIsMonotoneInAlpha) {
  const auto models = standard_models();
  const std::vector<double> alphas{1.0, 0.9999, 0.999, 0.99, 0.9, 0.5, 0.0};
  const auto frontier = sweep_frontier(models, 100000, alphas);
  ASSERT_EQ(frontier.size(), alphas.size());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    // As alpha decreases: makespan weakly increases, dirty energy weakly
    // decreases (Pareto frontier traversal).
    EXPECT_GE(frontier[i].makespan_s, frontier[i - 1].makespan_s - 1e-9);
    EXPECT_LE(frontier[i].dirty_joules, frontier[i - 1].dirty_joules + 1e-9);
  }
}

TEST(Pareto, FrontierPointsDominateEqualSplit) {
  const auto models = standard_models();
  const PartitionPlan eq = equal_split(models, 100000);
  const std::vector<double> alphas{1.0, 0.999};
  const auto frontier = sweep_frontier(models, 100000, alphas);
  // The alpha=1 point must beat the baseline on time; no frontier point
  // may be dominated BY the baseline (worse on both axes).
  EXPECT_LT(frontier[0].makespan_s, eq.predicted_makespan_s);
  for (const auto& pt : frontier) {
    const bool dominated = pt.makespan_s > eq.predicted_makespan_s + 1e-9 &&
                           pt.dirty_joules > eq.predicted_dirty_joules + 1e-9;
    EXPECT_FALSE(dominated);
  }
}

TEST(Pareto, NegativeDirtyRateAttractsAllLoadAtLowAlpha) {
  auto models = standard_models();
  models[2].dirty_rate = -10.0;  // green surplus node
  const PartitionPlan plan = solve_partition_sizes(models, 1000, 0.0);
  // With alpha=0 only energy matters: everything goes to the only node
  // whose marginal energy is negative.
  EXPECT_EQ(plan.sizes[2], 1000u);
}

TEST(Pareto, PlanMetricsMatchHandComputation) {
  const auto models = standard_models();
  const std::vector<std::size_t> sizes{1000, 0, 0, 0};
  EXPECT_NEAR(plan_makespan(models, sizes), 1e-4 * 1000 + 0.1, 1e-12);
  EXPECT_NEAR(plan_dirty_joules(models, sizes), 300.0 * (1e-4 * 1000 + 0.1),
              1e-9);
}

TEST(Pareto, IdleNodesContributeNothing) {
  const auto models = standard_models();
  const std::vector<std::size_t> sizes{0, 0, 0, 1000};
  // Only node 3's time/energy counts; idle intercepts are excluded.
  EXPECT_NEAR(plan_makespan(models, sizes), 4e-4 * 1000 + 0.1, 1e-12);
}

TEST(Pareto, RejectsInvalidInput) {
  const auto models = standard_models();
  EXPECT_THROW((void)solve_partition_sizes(models, 100, 1.5),
               common::ConfigError);
  EXPECT_THROW((void)solve_partition_sizes({}, 100, 1.0), common::ConfigError);
  auto bad = standard_models();
  bad[0].slope = 0.0;
  EXPECT_THROW((void)solve_partition_sizes(bad, 100, 1.0), common::ConfigError);
}

TEST(Pareto, SingleNodeTakesEverything) {
  const std::vector<NodeModel> one{
      NodeModel{.slope = 1e-3, .intercept = 0.0, .dirty_rate = 10.0}};
  const PartitionPlan plan = solve_partition_sizes(one, 777, 0.9);
  EXPECT_EQ(plan.sizes[0], 777u);
}

TEST(NormalizedPareto, ExtremesMatchRawFormulation) {
  const auto models = standard_models();
  const PartitionPlan raw1 = solve_partition_sizes(models, 50000, 1.0);
  const PartitionPlan norm1 = solve_partition_sizes_normalized(models, 50000, 1.0);
  EXPECT_NEAR(norm1.predicted_makespan_s, raw1.predicted_makespan_s, 1e-9);
  const PartitionPlan raw0 = solve_partition_sizes(models, 50000, 0.0);
  const PartitionPlan norm0 = solve_partition_sizes_normalized(models, 50000, 0.0);
  EXPECT_NEAR(norm0.predicted_dirty_joules, raw0.predicted_dirty_joules, 1e-6);
}

TEST(NormalizedPareto, MidAlphaGivesInteriorTradeoff) {
  const auto models = standard_models();
  const PartitionPlan fast = solve_partition_sizes_normalized(models, 100000, 1.0);
  const PartitionPlan mid = solve_partition_sizes_normalized(models, 100000, 0.5);
  const PartitionPlan green = solve_partition_sizes_normalized(models, 100000, 0.0);
  // alpha = 0.5 with normalized objectives must land strictly between the
  // extremes on at least one axis and never outside the envelope.
  EXPECT_GE(mid.predicted_makespan_s, fast.predicted_makespan_s - 1e-9);
  EXPECT_LE(mid.predicted_makespan_s, green.predicted_makespan_s + 1e-9);
  EXPECT_LE(mid.predicted_dirty_joules, fast.predicted_dirty_joules + 1e-9);
  EXPECT_GE(mid.predicted_dirty_joules, green.predicted_dirty_joules - 1e-9);
}

TEST(NormalizedPareto, SweepIsMonotone) {
  const auto models = standard_models();
  const std::vector<double> alphas{1.0, 0.8, 0.6, 0.4, 0.2, 0.0};
  const auto frontier = sweep_frontier_normalized(models, 100000, alphas);
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].makespan_s, frontier[i - 1].makespan_s - 1e-9);
    EXPECT_LE(frontier[i].dirty_joules, frontier[i - 1].dirty_joules + 1e-9);
  }
}

TEST(NormalizedPareto, DegenerateFrontierHandled) {
  // All nodes identical: the frontier is a single point; any alpha must
  // return a valid plan rather than dividing by a zero range.
  std::vector<NodeModel> same(4, NodeModel{.slope = 1e-4,
                                           .intercept = 0.1,
                                           .dirty_rate = 100.0});
  const PartitionPlan plan = solve_partition_sizes_normalized(same, 1000, 0.5);
  EXPECT_EQ(std::accumulate(plan.sizes.begin(), plan.sizes.end(),
                            std::size_t{0}),
            1000u);
}

TEST(Waterfill, DropsNodesWithHugeIntercept) {
  std::vector<NodeModel> models = standard_models();
  models[3].intercept = 1e9;  // startup cost so large it should stay idle
  const PartitionPlan plan = waterfill_makespan(models, 1000);
  EXPECT_EQ(plan.sizes[3], 0u);
  EXPECT_EQ(std::accumulate(plan.sizes.begin(), plan.sizes.end(),
                            std::size_t{0}),
            1000u);
}

}  // namespace
}  // namespace hetsim::optimize

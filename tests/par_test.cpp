// Tests for hetsim::par — the deterministic parallel-for pool — and the
// determinism contract of every pipeline kernel plumbed onto it: for a
// fixed seed, sketches, stratification, samples and partition contents
// must be byte-identical for every thread count and chunk size.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "data/generators.h"
#include "par/pool.h"
#include "partition/partitioner.h"
#include "sketch/minhash.h"
#include "stratify/kmodes.h"
#include "stratify/sampler.h"

namespace hetsim {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const std::uint32_t threads : {1U, 2U, 7U}) {
    par::ThreadPool pool(threads);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                    std::size_t{64}, std::size_t{1000}}) {
      std::vector<int> hits(257, 0);
      pool.parallel_for(hits.size(), chunk,
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t i = begin; i < end; ++i) ++hits[i];
                        });
      for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i], 1) << "index " << i << " threads " << threads
                              << " chunk " << chunk;
      }
    }
  }
}

TEST(ThreadPool, ChunkGeometryIndependentOfThreadCount) {
  constexpr std::size_t kN = 101;
  constexpr std::size_t kChunk = 8;
  const auto bounds_for = [&](std::uint32_t threads) {
    par::ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> bounds((kN + kChunk - 1) /
                                                            kChunk);
    pool.parallel_for(kN, kChunk, [&](std::size_t begin, std::size_t end) {
      bounds[begin / kChunk] = {begin, end};
    });
    return bounds;
  };
  const auto reference = bounds_for(1);
  for (std::size_t c = 0; c < reference.size(); ++c) {
    EXPECT_EQ(reference[c].first, c * kChunk);
    EXPECT_EQ(reference[c].second, std::min(kN, c * kChunk + kChunk));
  }
  EXPECT_EQ(bounds_for(2), reference);
  EXPECT_EQ(bounds_for(7), reference);
}

TEST(ThreadPool, ZeroIterationsIsANoOp) {
  par::ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, 16, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelMapMatchesSerial) {
  par::ThreadPool pool(5);
  const std::vector<std::uint64_t> out = pool.parallel_map<std::uint64_t>(
      1000, 17, [](std::size_t i) { return i * i + 1; });
  ASSERT_EQ(out.size(), 1000U);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i + 1);
}

TEST(ThreadPool, OrderedReduceIsThreadCountInvariant) {
  // String concatenation is non-commutative: only an ascending-chunk
  // combine order can make every thread count agree.
  const auto concat = [](std::uint32_t threads) {
    par::ThreadPool pool(threads);
    return pool.parallel_reduce<std::string>(
        100, 9, std::string{},
        [](std::size_t begin, std::size_t end) {
          return "[" + std::to_string(begin) + "," + std::to_string(end) + ")";
        },
        [](std::string acc, std::string part) { return acc + part; });
  };
  const std::string reference = concat(1);
  EXPECT_FALSE(reference.empty());
  EXPECT_EQ(concat(2), reference);
  EXPECT_EQ(concat(7), reference);
}

TEST(ThreadPool, RethrowsLowestChunkException) {
  for (const std::uint32_t threads : {1U, 4U}) {
    par::ThreadPool pool(threads);
    try {
      pool.parallel_for(80, 10, [](std::size_t begin, std::size_t) {
        const std::size_t chunk_index = begin / 10;
        if (chunk_index == 3 || chunk_index == 5) {
          throw common::ConfigError("boom chunk " +
                                    std::to_string(chunk_index));
        }
      });
      FAIL() << "expected ConfigError (threads=" << threads << ")";
    } catch (const common::ConfigError& e) {
      EXPECT_EQ(std::string(e.what()), "boom chunk 3") << "threads " << threads;
    }
    // The pool must stay usable after a failed fan-out.
    int sum = 0;
    pool.parallel_for(4, 4, [&](std::size_t begin, std::size_t end) {
      sum += static_cast<int>(end - begin);
    });
    EXPECT_EQ(sum, 4);
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  par::ThreadPool pool(4);
  std::vector<int> hits(64, 0);
  pool.parallel_for(8, 1, [&](std::size_t begin, std::size_t) {
    // Re-entering the same pool from a chunk body must neither deadlock
    // nor fan out; it runs serially on this lane.
    pool.parallel_for(8, 2, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) ++hits[begin * 8 + i];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPool, DefaultThreadsHonorsEnvOverride) {
  ::setenv("HETSIM_THREADS", "3", 1);
  EXPECT_EQ(par::default_threads(), 3U);
  ::setenv("HETSIM_THREADS", "not-a-number", 1);
  const std::uint32_t fallback = par::default_threads();
  ::unsetenv("HETSIM_THREADS");
  EXPECT_EQ(fallback, par::default_threads());
  EXPECT_GE(fallback, 1U);
}

// ---- pipeline determinism ---------------------------------------------------

struct PipelineOutputs {
  std::vector<sketch::Sketch> sketches;
  stratify::Stratification strat;
  std::vector<std::uint32_t> sample;
  partition::PartitionAssignment representative;
  partition::PartitionAssignment similar;
  partition::PartitionAssignment random;
};

PipelineOutputs run_pipeline(const data::Dataset& ds, const par::Options& par) {
  PipelineOutputs out;
  const sketch::MinHasher hasher({.num_hashes = 48, .seed = 31});
  out.sketches = hasher.sketch_all(ds.records, par);

  stratify::KModesConfig cfg;
  cfg.num_strata = 8;
  cfg.composite_l = 3;
  cfg.max_iterations = 10;
  cfg.par = par;
  out.strat = stratify::composite_kmodes(out.sketches, cfg);

  common::Rng rng(91);
  out.sample = stratify::stratified_sample(out.strat, 400, rng, par);

  const std::vector<std::size_t> sizes{600, 500, 250, 150};
  out.representative = partition::make_partitions(
      out.strat, sizes, partition::Layout::kRepresentative, 37, par);
  out.similar = partition::make_partitions(
      out.strat, sizes, partition::Layout::kSimilarTogether, 37, par);
  out.random = partition::random_partitions(ds.records.size(), sizes, 41, par);
  return out;
}

void expect_identical(const PipelineOutputs& got, const PipelineOutputs& want,
                      const std::string& label) {
  EXPECT_EQ(got.sketches, want.sketches) << label;
  EXPECT_EQ(got.strat.assignment, want.strat.assignment) << label;
  EXPECT_EQ(got.strat.num_strata, want.strat.num_strata) << label;
  EXPECT_EQ(got.strat.stratum_sizes, want.strat.stratum_sizes) << label;
  EXPECT_EQ(got.strat.zero_match_assignments, want.strat.zero_match_assignments)
      << label;
  EXPECT_EQ(got.strat.iterations, want.strat.iterations) << label;
  EXPECT_EQ(got.strat.work_ops, want.strat.work_ops) << label;
  EXPECT_EQ(got.strat.objective, want.strat.objective) << label;
  EXPECT_EQ(got.sample, want.sample) << label;
  EXPECT_EQ(got.representative.partitions, want.representative.partitions)
      << label;
  EXPECT_EQ(got.similar.partitions, want.similar.partitions) << label;
  EXPECT_EQ(got.random.partitions, want.random.partitions) << label;
}

TEST(ParDeterminism, PipelineIdenticalForAllThreadCountsAndChunks) {
  data::TextCorpusConfig corpus;
  corpus.num_docs = 1500;
  corpus.num_topics = 6;
  corpus.seed = 21;
  const data::Dataset ds = data::generate_text_corpus(corpus);
  const std::size_t n = ds.records.size();

  par::ThreadPool serial(1);
  const PipelineOutputs reference =
      run_pipeline(ds, par::Options{.pool = &serial});

  std::vector<std::uint32_t> thread_counts{1, 2, 7};
  const std::uint32_t hw = std::thread::hardware_concurrency();
  if (hw >= 1) thread_counts.push_back(hw);
  for (const std::uint32_t threads : thread_counts) {
    par::ThreadPool pool(threads);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{64}, n}) {
      const PipelineOutputs got =
          run_pipeline(ds, par::Options{.pool = &pool, .chunk = chunk});
      expect_identical(got, reference,
                       "threads=" + std::to_string(threads) +
                           " chunk=" + std::to_string(chunk));
    }
  }
}

TEST(ParDeterminism, SketchAllMatchesPerRecordSketch) {
  data::TextCorpusConfig corpus;
  corpus.num_docs = 200;
  corpus.seed = 5;
  const data::Dataset ds = data::generate_text_corpus(corpus);
  const sketch::MinHasher hasher({.num_hashes = 32, .seed = 7});
  par::ThreadPool pool(4);
  const auto all =
      hasher.sketch_all(ds.records, par::Options{.pool = &pool, .chunk = 13});
  ASSERT_EQ(all.size(), ds.records.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], hasher.sketch(ds.records[i].items)) << "record " << i;
  }
}

}  // namespace
}  // namespace hetsim

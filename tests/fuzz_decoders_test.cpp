// Fuzz-lite robustness suite: every decoder in the library is fed
// random byte strings and mutated valid streams. The contract under
// test: decoders either succeed or throw StoreError — never crash,
// hang, or read out of bounds. (Run under ASan/UBSan for full effect;
// the assertions here catch the exception-contract half.)
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "compress/huffman.h"
#include "compress/lz77.h"
#include "compress/webgraph.h"
#include "data/dataset.h"
#include "kvstore/codec.h"
#include "kvstore/resp.h"

namespace hetsim {
namespace {

std::string random_bytes(common::Rng& rng, std::size_t max_len) {
  std::string s;
  const std::size_t len = rng.bounded(max_len + 1);
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng.bounded(256)));
  }
  return s;
}

/// Run `decode` on the input; pass if it returns or throws StoreError.
template <typename F>
::testing::AssertionResult tolerates(F&& decode, const std::string& input) {
  try {
    decode(input);
    return ::testing::AssertionSuccess();
  } catch (const common::StoreError&) {
    return ::testing::AssertionSuccess();
  } catch (const std::exception& e) {
    return ::testing::AssertionFailure()
           << "unexpected exception type: " << e.what();
  }
}

class FuzzDecoders : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  common::Rng rng_{GetParam()};
};

TEST_P(FuzzDecoders, RespToleratesGarbage) {
  for (int i = 0; i < 200; ++i) {
    const std::string input = random_bytes(rng_, 64);
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)kvstore::resp::decode_all(s); },
        input));
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)kvstore::resp::decode_command(s); },
        input));
  }
}

TEST_P(FuzzDecoders, RespToleratesMutatedValidStreams) {
  const kvstore::Command cmd{.type = kvstore::CommandType::kSet,
                             .key = "key",
                             .value = "some-value"};
  const std::string valid = kvstore::resp::encode_command(cmd);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = valid;
    mutated[rng_.bounded(mutated.size())] =
        static_cast<char>(rng_.bounded(256));
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)kvstore::resp::decode_command(s); },
        mutated));
  }
}

TEST_P(FuzzDecoders, Lz77ToleratesGarbage) {
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)compress::lz77_decompress(s); },
        random_bytes(rng_, 256)));
  }
}

TEST_P(FuzzDecoders, Lz77ToleratesTruncationAndMutation) {
  std::string input;
  for (int i = 0; i < 300; ++i) input += "abcabcXYZ";
  const std::string valid = compress::lz77_compress(input);
  for (int i = 0; i < 100; ++i) {
    std::string bad = valid.substr(0, rng_.bounded(valid.size()));
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)compress::lz77_decompress(s); },
        bad));
    std::string mutated = valid;
    mutated[rng_.bounded(mutated.size())] =
        static_cast<char>(rng_.bounded(256));
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)compress::lz77_decompress(s); },
        mutated));
  }
}

TEST_P(FuzzDecoders, HuffmanToleratesGarbage) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)compress::huffman_decompress(s); },
        random_bytes(rng_, 512)));
  }
  // Mutated valid stream.
  const std::string valid = compress::huffman_compress("hello hello hello");
  for (int i = 0; i < 100; ++i) {
    std::string mutated = valid;
    mutated[rng_.bounded(mutated.size())] =
        static_cast<char>(rng_.bounded(256));
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)compress::huffman_decompress(s); },
        mutated));
  }
}

TEST_P(FuzzDecoders, KvCodecToleratesGarbage) {
  for (int i = 0; i < 200; ++i) {
    const std::string input = random_bytes(rng_, 128);
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)kvstore::unpack_records(s); }, input));
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)kvstore::decode_u32s(s); }, input));
  }
}

TEST_P(FuzzDecoders, DatasetPayloadsTolerateGarbage) {
  for (int i = 0; i < 200; ++i) {
    const std::string input = random_bytes(rng_, 128);
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)data::decode_items(s); }, input));
    EXPECT_TRUE(tolerates(
        [](const std::string& s) { (void)data::decode_tree(s); }, input));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDecoders,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace hetsim

// Tests for hetsim::fault and the failure handling built on it:
// deterministic seeded fault draws, FaultPlan JSON IO, the kvstore
// client's retry/timeout/backoff loop, RESP server fault replies,
// barrier timeout diagnostics, and the runtime's node-loss graceful
// degradation (fail-stop -> missed heartbeats -> survivor re-plan).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/error.h"
#include "core/workload.h"
#include "data/generators.h"
#include "energy/estimator.h"
#include "fault/fault.h"
#include "kvstore/barrier.h"
#include "kvstore/client.h"
#include "kvstore/resp.h"
#include "kvstore/server.h"
#include "kvstore/store.h"
#include "net/fabric.h"
#include "runtime/executor.h"
#include "runtime/runtime.h"

namespace hetsim {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;

// ---- FaultPlan JSON --------------------------------------------------------

constexpr const char* kFullPlanJson = R"({
  "seed": 42,
  "net": {"drop_prob": 0.02, "drop_request_lost_fraction": 0.5,
          "spike_prob": 0.01, "spike_latency_s": 0.005,
          "partitions": [{"a": 0, "b": 2, "after_round_trips": 100}]},
  "stores": [{"host": 1, "error_prob": 0.01, "stall_prob": 0.01,
              "stall_s": 0.2, "crash_at_op": 7}],
  "nodes": [{"node": 3, "fail_stop_at_s": 12.5},
            {"node": 5, "slowdown_factor": 1.5}]
})";

TEST(FaultPlanJson, ParsesFullSchema) {
  const FaultPlan plan = FaultPlan::from_json_text(kFullPlanJson);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.net.drop_prob, 0.02);
  EXPECT_DOUBLE_EQ(plan.net.spike_latency_s, 0.005);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].a, 0u);
  EXPECT_EQ(plan.partitions[0].b, 2u);
  EXPECT_EQ(plan.partitions[0].after_round_trips, 100u);
  ASSERT_EQ(plan.stores.count(1), 1u);
  EXPECT_DOUBLE_EQ(plan.stores.at(1).stall_s, 0.2);
  EXPECT_EQ(plan.stores.at(1).crash_at_op, 7u);
  ASSERT_EQ(plan.nodes.count(3), 1u);
  EXPECT_DOUBLE_EQ(plan.nodes.at(3).fail_stop_at_s, 12.5);
  EXPECT_DOUBLE_EQ(plan.nodes.at(5).slowdown_factor, 1.5);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanJson, RejectsUnknownKeysSoTyposFailLoudly) {
  EXPECT_THROW((void)FaultPlan::from_json_text(R"({"net": {"drop_pr0b": 1}})"),
               common::ConfigError);
  EXPECT_THROW((void)FaultPlan::from_json_text(R"({"sedes": 1})"),
               common::ConfigError);
}

TEST(FaultPlanJson, RejectsOutOfRangeKnobs) {
  EXPECT_THROW((void)FaultPlan::from_json_text(R"({"net": {"drop_prob": 2}})"),
               common::ConfigError);
  EXPECT_THROW((void)FaultPlan::from_json_text(
                   R"({"nodes": [{"node": 0, "slowdown_factor": 0.5}]})"),
               common::ConfigError);
  EXPECT_THROW(
      (void)FaultPlan::from_json_text(
          R"({"net": {"partitions": [{"a": 1, "b": 1}]}})"),
      common::ConfigError);
}

TEST(FaultPlanJson, RejectsNoOpStanzasThatWouldSilentlyInjectNothing) {
  // An empty 'net' object, an empty array, or an entry with no fault
  // knob is almost always a typo'd plan; all of them fail loudly.
  EXPECT_THROW((void)FaultPlan::from_json_text(R"({"net": {}})"),
               common::ConfigError);
  EXPECT_THROW(
      (void)FaultPlan::from_json_text(R"({"net": {"partitions": []}})"),
      common::ConfigError);
  EXPECT_THROW((void)FaultPlan::from_json_text(R"({"stores": []})"),
               common::ConfigError);
  EXPECT_THROW((void)FaultPlan::from_json_text(R"({"nodes": []})"),
               common::ConfigError);
  EXPECT_THROW((void)FaultPlan::from_json_text(R"({"stores": [{"host": 1}]})"),
               common::ConfigError);
  EXPECT_THROW((void)FaultPlan::from_json_text(R"({"nodes": [{"node": 2}]})"),
               common::ConfigError);
}

TEST(FaultPlanJson, RejectsExplicitCrashAtOpZero) {
  // crash_at_op counts interactions 1-based; 0 is the "disabled"
  // sentinel, so writing it explicitly is a contradiction.
  EXPECT_THROW((void)FaultPlan::from_json_text(
                   R"({"stores": [{"host": 1, "crash_at_op": 0}]})"),
               common::ConfigError);
}

TEST(FaultPlanJson, PartitionHealRoundTrips) {
  const FaultPlan plan = FaultPlan::from_json_text(
      R"({"net": {"partitions": [{"a": 1, "b": 3, "after_round_trips": 10,
                                  "heals_after_round_trips": 25}]}})");
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].after_round_trips, 10u);
  EXPECT_EQ(plan.partitions[0].heals_after_round_trips, 25u);
  const FaultPlan back = FaultPlan::from_json_text(fault::plan_to_json(plan));
  ASSERT_EQ(back.partitions.size(), 1u);
  EXPECT_EQ(back.partitions[0].heals_after_round_trips, 25u);
  // A permanent partition omits the heal key entirely.
  FaultPlan forever;
  forever.partitions.push_back({0, 2, 4});
  EXPECT_EQ(fault::plan_to_json(forever).find("heals_after_round_trips"),
            std::string::npos);
}

TEST(FaultPlanJson, ZeroDurationPartitionSeversTheLinkFromTheFirstTrip) {
  const FaultPlan plan = FaultPlan::from_json_text(
      R"({"net": {"partitions": [{"a": 0, "b": 2}]}})");
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(plan.partitions[0].after_round_trips, 0u);
  FaultInjector inj(plan);
  EXPECT_TRUE(inj.on_round_trip(0, 2).partitioned);
}

TEST(FaultPlanJson, PlanToJsonRoundTripsThroughTheStrictParser) {
  const FaultPlan plan = FaultPlan::from_json_text(kFullPlanJson);
  const std::string json = fault::plan_to_json(plan);
  const FaultPlan back = FaultPlan::from_json_text(json);
  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_DOUBLE_EQ(back.net.drop_prob, plan.net.drop_prob);
  EXPECT_DOUBLE_EQ(back.net.spike_latency_s, plan.net.spike_latency_s);
  ASSERT_EQ(back.partitions.size(), plan.partitions.size());
  EXPECT_EQ(back.partitions[0].after_round_trips,
            plan.partitions[0].after_round_trips);
  ASSERT_EQ(back.stores.count(1), 1u);
  EXPECT_EQ(back.stores.at(1).crash_at_op, plan.stores.at(1).crash_at_op);
  EXPECT_DOUBLE_EQ(back.stores.at(1).stall_s, plan.stores.at(1).stall_s);
  ASSERT_EQ(back.nodes.size(), plan.nodes.size());
  EXPECT_DOUBLE_EQ(back.nodes.at(3).fail_stop_at_s, 12.5);
  EXPECT_DOUBLE_EQ(back.nodes.at(5).slowdown_factor, 1.5);
  // Serializing again is a fixed point.
  EXPECT_EQ(fault::plan_to_json(back), json);
}

TEST(FaultPlanJson, EmptyPlanSerializesToJustTheSeed) {
  FaultPlan plan;
  plan.seed = 9;
  // Only non-default knobs are emitted, so even a fault-free plan's
  // output re-parses under the no-op stanza rejection above.
  const FaultPlan back = FaultPlan::from_json_text(fault::plan_to_json(plan));
  EXPECT_EQ(back.seed, 9u);
  EXPECT_TRUE(back.empty());
}

// ---- FaultInjector determinism ---------------------------------------------

TEST(FaultInjector, EmptyPlanIsDisabled) {
  FaultInjector inj{FaultPlan{}};
  EXPECT_FALSE(inj.enabled());
  const fault::RoundTripFault f = inj.on_round_trip(0, 1);
  EXPECT_FALSE(f.dropped);
  EXPECT_FALSE(f.partitioned);
  EXPECT_DOUBLE_EQ(f.extra_latency_s, 0.0);
  // Disabled injectors don't even count: zero bookkeeping overhead.
  EXPECT_EQ(inj.round_trips(0, 1), 0u);
}

TEST(FaultInjector, SameSeedReplaysTheExactSameFaultSequence) {
  FaultPlan plan;
  plan.seed = 7;
  plan.net.drop_prob = 0.3;
  plan.net.spike_prob = 0.2;
  plan.net.spike_latency_s = 0.004;
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 300; ++i) {
    const fault::RoundTripFault fa = a.on_round_trip(0, 1);
    const fault::RoundTripFault fb = b.on_round_trip(0, 1);
    EXPECT_EQ(fa.dropped, fb.dropped) << "trip " << i;
    EXPECT_EQ(fa.request_lost, fb.request_lost) << "trip " << i;
    EXPECT_DOUBLE_EQ(fa.extra_latency_s, fb.extra_latency_s) << "trip " << i;
  }
}

TEST(FaultInjector, DifferentSeedsGiveDifferentSequences) {
  FaultPlan plan;
  plan.net.drop_prob = 0.5;
  plan.seed = 1;
  FaultInjector a(plan);
  plan.seed = 2;
  FaultInjector b(plan);
  int differing = 0;
  for (int i = 0; i < 200; ++i) {
    if (a.on_round_trip(0, 1).dropped != b.on_round_trip(0, 1).dropped) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, LoopbackNeverFails) {
  FaultPlan plan;
  plan.net.drop_prob = 1.0;
  FaultInjector inj(plan);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(inj.on_round_trip(2, 2).dropped);
  }
}

TEST(FaultInjector, PartitionSeversLinkAfterBudgetBothDirectionsCounted) {
  FaultPlan plan;
  plan.partitions.push_back({0, 1, 4});
  FaultInjector inj(plan);
  // Trips alternate directions; both count against the shared budget.
  EXPECT_FALSE(inj.on_round_trip(0, 1).partitioned);  // total served: 1
  EXPECT_FALSE(inj.on_round_trip(1, 0).partitioned);  // 2
  EXPECT_FALSE(inj.on_round_trip(0, 1).partitioned);  // 3
  EXPECT_FALSE(inj.on_round_trip(1, 0).partitioned);  // 4
  EXPECT_TRUE(inj.on_round_trip(0, 1).partitioned);   // budget spent
  EXPECT_TRUE(inj.on_round_trip(1, 0).partitioned);   // never heals
  // Unrelated links are unaffected.
  EXPECT_FALSE(inj.on_round_trip(0, 2).partitioned);
}

TEST(FaultInjector, PartitionHealsAfterTheConfiguredConsults) {
  FaultPlan plan;
  plan.partitions.push_back({0, 1, 2, 3});  // sever after 2, heal 3 later
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.on_round_trip(0, 1).partitioned);  // total served: 1
  EXPECT_FALSE(inj.on_round_trip(1, 0).partitioned);  // 2
  // Severed: consults keep advancing the counter while the link is
  // down — a retry loop that keeps knocking reaches the heal point.
  EXPECT_TRUE(inj.on_round_trip(0, 1).partitioned);
  EXPECT_TRUE(inj.on_round_trip(0, 1).partitioned);
  EXPECT_TRUE(inj.on_round_trip(1, 0).partitioned);
  // Healed, both directions, and it stays healed.
  EXPECT_FALSE(inj.on_round_trip(0, 1).partitioned);
  EXPECT_FALSE(inj.on_round_trip(1, 0).partitioned);
}

TEST(FaultInjector, CrashAtOpTakesTheStoreDownForever) {
  FaultPlan plan;
  plan.stores[1].crash_at_op = 2;
  FaultInjector inj(plan);
  EXPECT_EQ(inj.on_store_op(1), fault::StoreFault::kNone);
  EXPECT_EQ(inj.on_store_op(1), fault::StoreFault::kNone);
  EXPECT_EQ(inj.on_store_op(1), fault::StoreFault::kDown);
  EXPECT_EQ(inj.on_store_op(1), fault::StoreFault::kDown);
  // Other hosts are unaffected.
  EXPECT_EQ(inj.on_store_op(0), fault::StoreFault::kNone);
}

// ---- kvstore client retries ------------------------------------------------

struct ClientRig {
  net::Fabric fabric{2};
  kvstore::Store store;

  kvstore::Client client(FaultInjector* inj,
                         kvstore::RetryPolicy retry = {}) {
    return kvstore::Client(fabric, 0, 1, store, 8, inj, retry);
  }
};

TEST(ClientRetry, OccasionalInjectedErrorsAreRetriedTransparently) {
  // 10% error rate: retries are certain over 80 interactions, while
  // exhausting all 4 attempts (p = 1e-4 per op) stays out of reach.
  FaultPlan plan;
  plan.stores[1].error_prob = 0.1;
  FaultInjector inj(plan);
  ClientRig rig;
  kvstore::Client c = rig.client(&inj);
  for (int i = 0; i < 40; ++i) {
    const std::string key = "k" + std::to_string(i);
    c.set(key, "v");
    EXPECT_EQ(c.get(key).value_or("?"), "v");
  }
  EXPECT_GT(rig.fabric.retry_stats().retries, 0u);
  EXPECT_EQ(rig.fabric.retry_stats().failures, 0u);
}

TEST(ClientRetry, ExhaustedRetriesSurfaceUnavailable) {
  FaultPlan plan;
  plan.stores[1].error_prob = 1.0;
  FaultInjector inj(plan);
  ClientRig rig;
  kvstore::Client c = rig.client(&inj);
  const kvstore::Reply r =
      c.execute({.type = kvstore::CommandType::kGet, .key = "k"});
  EXPECT_EQ(r.status, kvstore::Status::kUnavailable);
  EXPECT_EQ(rig.fabric.retry_stats().attempts,
            kvstore::RetryPolicy{}.max_attempts);
  EXPECT_EQ(rig.fabric.retry_stats().failures, 1u);
  // The typed wrappers turn the status into an exception.
  EXPECT_THROW((void)c.get("k"), kvstore::UnavailableError);
  EXPECT_THROW(kvstore::expect_ok(
                   c.execute({.type = kvstore::CommandType::kGet, .key = "k"})),
               kvstore::UnavailableError);
}

TEST(ClientRetry, DroppedLinkTimesOutIdempotentReadsToUnavailable) {
  FaultPlan plan;
  plan.net.drop_prob = 1.0;
  plan.net.drop_request_lost_fraction = 1.0;
  FaultInjector inj(plan);
  ClientRig rig;
  kvstore::Client c = rig.client(&inj);
  const kvstore::Reply r =
      c.execute({.type = kvstore::CommandType::kGet, .key = "k"});
  EXPECT_EQ(r.status, kvstore::Status::kUnavailable);
  EXPECT_GT(rig.fabric.retry_stats().timeouts, 0u);
}

TEST(ClientRetry, TimeoutNeverRetriesNonIdempotentCommands) {
  // Reply-lost drop: the server applies the RPUSH but the client cannot
  // know. Retrying could double-append, so the client must surface
  // kTimeout after ONE attempt.
  FaultPlan plan;
  plan.net.drop_prob = 1.0;
  plan.net.drop_request_lost_fraction = 0.0;
  FaultInjector inj(plan);
  ClientRig rig;
  kvstore::Client c = rig.client(&inj);
  const kvstore::Reply r = c.execute(
      {.type = kvstore::CommandType::kRPush, .key = "l", .value = "x"});
  EXPECT_EQ(r.status, kvstore::Status::kTimeout);
  EXPECT_EQ(rig.fabric.retry_stats().attempts, 1u);
  EXPECT_EQ(rig.fabric.retry_stats().retries, 0u);
  // Applied exactly once on the server side — no double-apply.
  EXPECT_EQ(rig.store.llen("l"), 1u);
}

TEST(ClientRetry, StalledStoreReadsAsTimeout) {
  FaultPlan plan;
  plan.stores[1].stall_prob = 1.0;
  plan.stores[1].stall_s = 1.0;  // >= attempt_timeout_s => reply too late
  FaultInjector inj(plan);
  ClientRig rig;
  kvstore::Client c = rig.client(&inj);
  const kvstore::Reply r =
      c.execute({.type = kvstore::CommandType::kGet, .key = "k"});
  EXPECT_EQ(r.status, kvstore::Status::kUnavailable);
  EXPECT_GT(rig.fabric.retry_stats().timeouts, 0u);
}

TEST(ClientRetry, SubTimeoutStallOnlyAddsLatency) {
  FaultPlan plan;
  plan.stores[1].stall_prob = 1.0;
  plan.stores[1].stall_s = 0.01;  // < attempt_timeout_s: slow, not lost
  FaultInjector inj(plan);
  ClientRig rig;
  kvstore::Client slow = rig.client(&inj);
  slow.set("k", "v");
  net::Fabric fabric2{2};
  kvstore::Store store2;
  kvstore::Client fast(fabric2, 0, 1, store2, 8, nullptr);
  fast.set("k", "v");
  EXPECT_GT(slow.consumed_time(), fast.consumed_time());
  EXPECT_EQ(rig.fabric.retry_stats().failures, 0u);
}

TEST(ClientRetry, PipelinedBatchFailsAsAUnit) {
  FaultPlan plan;
  plan.stores[1].error_prob = 1.0;
  FaultInjector inj(plan);
  ClientRig rig;
  kvstore::Client c = rig.client(&inj);
  for (int i = 0; i < 3; ++i) {
    c.enqueue({.type = kvstore::CommandType::kSet,
               .key = "k" + std::to_string(i),
               .value = "v"});
  }
  const std::vector<kvstore::Reply> replies = c.drain();
  ASSERT_EQ(replies.size(), 3u);
  for (const kvstore::Reply& r : replies) {
    EXPECT_EQ(r.status, kvstore::Status::kUnavailable);
  }
  EXPECT_THROW(kvstore::expect_ok(replies), kvstore::UnavailableError);
}

TEST(ClientRetry, BatchWithNonIdempotentCommandStopsAtFirstTimeout) {
  FaultPlan plan;
  plan.net.drop_prob = 1.0;
  plan.net.drop_request_lost_fraction = 0.0;
  FaultInjector inj(plan);
  ClientRig rig;
  kvstore::Client c = rig.client(&inj);
  c.enqueue({.type = kvstore::CommandType::kSet, .key = "a", .value = "1"});
  c.enqueue({.type = kvstore::CommandType::kRPush, .key = "l", .value = "x"});
  const std::vector<kvstore::Reply> replies = c.drain();
  ASSERT_EQ(replies.size(), 2u);
  for (const kvstore::Reply& r : replies) {
    EXPECT_EQ(r.status, kvstore::Status::kTimeout);
  }
  EXPECT_EQ(rig.fabric.retry_stats().attempts, 1u);
}

TEST(ClientRetry, RetryTimingIsDeterministic) {
  FaultPlan plan;
  plan.seed = 11;
  plan.stores[1].error_prob = 0.5;
  const auto run_once = [&] {
    FaultInjector inj(plan);
    ClientRig rig;
    kvstore::Client c = rig.client(&inj);
    for (int i = 0; i < 30; ++i) {
      (void)c.execute({.type = kvstore::CommandType::kGet,
                       .key = "k" + std::to_string(i)});
    }
    return c.consumed_time();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

// ---- RESP server fault replies ---------------------------------------------

TEST(RespServerFaults, InjectedErrorAndCrashSurfaceAsErrorReplies) {
  FaultPlan plan;
  plan.stores[3].crash_at_op = 1;
  FaultInjector inj(plan);
  kvstore::Store store;
  kvstore::RespServer server(store);
  server.inject_faults(&inj, 3);
  const std::string wire = kvstore::resp::encode_command(
      {.type = kvstore::CommandType::kSet, .key = "k", .value = "v"});
  // First interaction is served, the second hits the crash.
  EXPECT_EQ(server.handle(wire)[0], '+');
  const std::string down = server.handle(wire);
  EXPECT_EQ(down.rfind("-ERR FAULT", 0), 0u) << down;
  EXPECT_TRUE(store.exists("k"));  // the pre-crash write landed
}

// ---- barrier timeout diagnostics -------------------------------------------

TEST(BarrierTimeout, NamesTheMissingParties) {
  kvstore::Store store;
  kvstore::Barrier barrier(store, "phase", 3, {.timeout_polls = 50});
  try {
    (void)barrier.arrive_and_wait(/*party=*/1);
    FAIL() << "expected TimeoutError";
  } catch (const common::TimeoutError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("timed out"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1/3 arrived"), std::string::npos) << msg;
    EXPECT_NE(msg.find("missing parties: {0, 2}"), std::string::npos) << msg;
  }
}

// ---- executor fail-stop + rescue -------------------------------------------

TEST(PhaseExecutorFaults, FailStopOrphansAreRescuedThroughCheckpoint) {
  cluster::Cluster cluster(cluster::standard_cluster(2));
  FaultPlan plan;
  plan.nodes[1].fail_stop_at_s = 0.0;  // dies at its first admission
  FaultInjector inj(plan);
  cluster.set_fault(&inj);

  std::vector<std::vector<std::uint32_t>> queues(2);
  for (std::uint32_t i = 0; i < 10; ++i) queues[0].push_back(i);
  for (std::uint32_t i = 10; i < 20; ++i) queues[1].push_back(i);
  runtime::ExecutorOptions opts;
  opts.chunk_records = 4;
  opts.fault = &inj;
  runtime::PhaseExecutor executor(
      cluster, queues,
      [](cluster::NodeContext& ctx, std::span<const std::uint32_t> indices) {
        ctx.meter().add(100.0 * static_cast<double>(indices.size()));
      },
      opts);
  std::size_t rescued = 0;
  executor.set_checkpoint([&](std::uint32_t node) {
    const double now = executor.node_time(node);
    for (std::uint32_t d = 0; d < 2; ++d) {
      if (d == node || executor.remaining(d) == 0) continue;
      if (now - executor.heartbeat(d) <=
          executor.heartbeat_timeout(node)) {
        continue;
      }
      const std::vector<std::uint32_t> orphans = executor.take_all(d);
      rescued += orphans.size();
      executor.give(node, orphans);
    }
  });
  const runtime::ExecutorReport report = executor.run();
  EXPECT_EQ(report.unprocessed, 0u);
  EXPECT_EQ(rescued, 10u);
  EXPECT_EQ(report.per_node[1].records_done, 0u);
  EXPECT_EQ(report.per_node[0].records_done, 20u);
}

// ---- runtime node-loss degraded mode ---------------------------------------

/// Linear-cost workload (same shape as the runtime tests' helper): the
/// estimator's fit is exact, so faults are the only surprise.
class LinearWorkload final : public core::Workload {
 public:
  [[nodiscard]] std::string name() const override { return "linear"; }
  [[nodiscard]] partition::Layout preferred_layout() const override {
    return partition::Layout::kRepresentative;
  }
  void reset(std::size_t, std::uint32_t) override {}
  void run(cluster::NodeContext& ctx, const data::Dataset&,
           std::span<const std::uint32_t> indices) override {
    ctx.meter().add(500.0 * static_cast<double>(indices.size()));
  }
};

data::Dataset small_corpus(std::size_t docs = 400, std::uint64_t seed = 7) {
  data::TextCorpusConfig cfg;
  cfg.num_docs = docs;
  cfg.seed = seed;
  return data::generate_text_corpus(cfg, "corpus");
}

runtime::JobSpec fast_spec() {
  runtime::JobSpec spec;
  spec.sampling.min_records = 20;
  spec.sampling.steps = 3;
  spec.kmodes.num_strata = 8;
  spec.kmodes.max_iterations = 4;
  spec.sketch.num_hashes = 16;
  return spec;
}

runtime::JobSummary run_job(const data::Dataset& dataset, const FaultPlan* plan,
                            std::string* trace_and_summary = nullptr,
                            runtime::JobSpec spec = fast_spec()) {
  cluster::Cluster cluster(cluster::standard_cluster(4));
  const auto energy = energy::GreenEnergyEstimator::standard(72);
  std::unique_ptr<FaultInjector> inj;
  if (plan != nullptr) {
    inj = std::make_unique<FaultInjector>(*plan);
    cluster.set_fault(inj.get());
  }
  LinearWorkload workload;
  runtime::JobRuntime rt(cluster, energy, std::move(spec));
  const runtime::JobSummary summary = rt.run(dataset, workload);
  if (trace_and_summary != nullptr) {
    *trace_and_summary =
        rt.trace().chrome_trace_json() + "\n" + summary_json(summary);
  }
  return summary;
}

TEST(NodeLoss, SingleFailStopCompletesDegradedWithZeroLostRecords) {
  const data::Dataset dataset = small_corpus();
  FaultPlan plan;
  plan.nodes[3].fail_stop_at_s = 0.0;  // node 3 never runs a chunk
  const runtime::JobSummary summary = run_job(dataset, &plan);
  EXPECT_TRUE(summary.degraded);
  ASSERT_EQ(summary.nodes_lost, (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(summary.node_loss_replans, 1u);
  EXPECT_GT(summary.replanned_records, 0u);
  EXPECT_GT(summary.replanned_bytes, 0.0);
  EXPECT_EQ(summary.processed[3], 0u);
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
}

TEST(NodeLoss, MidRunFailStopKeepsCompletedWorkAndConserves) {
  const data::Dataset dataset = small_corpus();
  // Let node 3 finish part of its partition first, then die.
  const runtime::JobSummary clean = run_job(dataset, nullptr);
  FaultPlan plan;
  plan.nodes[3].fail_stop_at_s = clean.makespan_s * 0.3;
  const runtime::JobSummary summary = run_job(dataset, &plan);
  EXPECT_TRUE(summary.degraded);
  ASSERT_EQ(summary.nodes_lost, (std::vector<std::uint32_t>{3}));
  EXPECT_GT(summary.processed[3], 0u);  // pre-failure chunks kept
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
  // Strictly better than detecting the loss and restarting the whole job
  // on the degraded cluster: a restart pays the failure time AND a full
  // run with node 3 gone from the outset.
  FaultPlan from_start = plan;
  from_start.nodes[3].fail_stop_at_s = 0.0;
  const runtime::JobSummary rerun = run_job(dataset, &from_start);
  EXPECT_LT(summary.makespan_s,
            plan.nodes[3].fail_stop_at_s + rerun.makespan_s);
}

TEST(NodeLoss, TwoFailStopsStillConserveEveryRecord) {
  const data::Dataset dataset = small_corpus();
  FaultPlan plan;
  plan.nodes[2].fail_stop_at_s = 0.0;
  plan.nodes[3].fail_stop_at_s = 0.0;
  const runtime::JobSummary summary = run_job(dataset, &plan);
  EXPECT_TRUE(summary.degraded);
  EXPECT_EQ(summary.nodes_lost.size(), 2u);
  EXPECT_EQ(summary.node_loss_replans, 2u);
  EXPECT_EQ(summary.processed[2] + summary.processed[3], 0u);
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
}

TEST(NodeLoss, MasterFailStopReportsDataUnavailableInsteadOfThrowing) {
  const data::Dataset dataset = small_corpus(200);
  FaultPlan plan;
  plan.nodes[0].fail_stop_at_s = 0.0;  // node 0 is the data master
  // Unreplicated master loss used to throw mid-run; it now finishes the
  // survivors' work and reports the typed outcome.
  const runtime::JobSummary summary = run_job(dataset, &plan);
  EXPECT_EQ(summary.status, runtime::JobStatus::kDataUnavailable);
  EXPECT_TRUE(summary.degraded);
  ASSERT_EQ(summary.nodes_lost, (std::vector<std::uint32_t>{0}));
  // The master's queued records are gone — strictly fewer processed
  // than ingested, which is exactly what the status encodes.
  EXPECT_LT(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
}

TEST(NodeLoss, MasterFailStopWithReplicationLosesNothing) {
  const data::Dataset dataset = small_corpus(200);
  FaultPlan plan;
  plan.nodes[0].fail_stop_at_s = 0.0;  // node 0 is the data master
  runtime::JobSpec spec = fast_spec();
  spec.replication = 2;
  const runtime::JobSummary summary =
      run_job(dataset, &plan, nullptr, spec);
  EXPECT_EQ(summary.status, runtime::JobStatus::kDegraded);
  ASSERT_EQ(summary.nodes_lost, (std::vector<std::uint32_t>{0}));
  EXPECT_GE(summary.elections, 1u);
  EXPECT_GT(summary.replica_rescued_records, 0u);
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
}

TEST(NodeLoss, DegradedRunIsByteIdenticalForTheSameSeedAndPlan) {
  const data::Dataset dataset = small_corpus(300);
  FaultPlan plan;
  plan.seed = 5;
  plan.nodes[3].fail_stop_at_s = 0.0;
  plan.net.drop_prob = 0.01;
  plan.stores[2].error_prob = 0.01;
  std::string a;
  std::string b;
  (void)run_job(dataset, &plan, &a);
  (void)run_job(dataset, &plan, &b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(NodeLoss, EmptyPlanMatchesNoInjectorByteForByte) {
  const data::Dataset dataset = small_corpus(300);
  const FaultPlan empty;
  std::string without;
  std::string with;
  (void)run_job(dataset, nullptr, &without);
  (void)run_job(dataset, &empty, &with);
  EXPECT_EQ(without, with);
}

TEST(FaultyFabricJob, RetriesAreAccountedInTheSummary) {
  const data::Dataset dataset = small_corpus(300);
  // Pipelining collapses a whole batch into ONE fault draw, so the
  // error rate must be high enough that some batch somewhere fails
  // (retriable error replies — never applied, so always safe).
  FaultPlan plan;
  plan.stores[1].error_prob = 0.2;
  plan.stores[2].error_prob = 0.2;
  plan.stores[3].error_prob = 0.2;
  const runtime::JobSummary summary = run_job(dataset, &plan);
  EXPECT_GT(summary.kv_retries, 0u);
  EXPECT_EQ(summary.kv_failures, 0u);
  EXPECT_FALSE(summary.degraded);
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
}

// ---- byzantine store/net faults through the phase DAG ----------------------

TEST(ByzantineJob, StoreErrorDuringIngestReportsDataUnavailable) {
  const data::Dataset dataset = small_corpus();
  // The master's store rejects every interaction. Without replication
  // there is nowhere else to put the data: ingest exhausts its phase
  // attempts and the job finishes with a typed status — no exception
  // escapes JobRuntime::run.
  FaultPlan plan;
  plan.stores[0].error_prob = 1.0;
  runtime::JobSummary summary;
  EXPECT_NO_THROW(summary = run_job(dataset, &plan));
  EXPECT_EQ(summary.status, runtime::JobStatus::kDataUnavailable);
  EXPECT_EQ(summary.failed_phase, "ingest");
  EXPECT_FALSE(summary.failure_detail.empty());
  EXPECT_GT(summary.phase_retries, 0u);
  // The summary is still clean and serializable: nothing was processed,
  // nothing pretends to have been.
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            0u);
  EXPECT_FALSE(summary_json(summary).empty());
}

TEST(ByzantineJob, StoreStallWithReplicationServesFromReplicas) {
  const data::Dataset dataset = small_corpus();
  // Every op on the master's store stalls past the attempt timeout:
  // the canonical list never completes, but replicated writes acked on
  // the survivors let the partition phase re-pull every shard through
  // the replica walk. Degraded, with zero records lost.
  FaultPlan plan;
  plan.stores[0].stall_prob = 1.0;
  plan.stores[0].stall_s = 1.0;
  runtime::JobSpec spec = fast_spec();
  spec.replication = 2;
  runtime::JobSummary summary;
  EXPECT_NO_THROW(summary = run_job(dataset, &plan, nullptr, spec));
  EXPECT_EQ(summary.status, runtime::JobStatus::kDegraded);
  EXPECT_GT(summary.replica_rescued_records, 0u);
  EXPECT_EQ(summary.records_dropped, 0u);
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
}

TEST(ByzantineJob, HealingPartitionLetsAPhaseRetrySucceed) {
  const data::Dataset dataset = small_corpus();
  // The 0<->2 link is severed from the first trip and heals after a
  // window sized to outlast the kv client's in-attempt retries — the
  // PHASE has to fail once and come back before traffic flows again.
  FaultPlan plan;
  plan.partitions.push_back({0, 2, 0, 10});
  runtime::JobSummary summary;
  EXPECT_NO_THROW(summary = run_job(dataset, &plan));
  EXPECT_GT(summary.phase_retries, 0u);
  EXPECT_EQ(summary.status, runtime::JobStatus::kOk);
  EXPECT_EQ(std::accumulate(summary.processed.begin(),
                            summary.processed.end(), std::size_t{0}),
            dataset.size());
}

TEST(ByzantineJob, DegradedStoreFaultTracesAreByteIdentical) {
  const data::Dataset dataset = small_corpus();
  FaultPlan plan;
  plan.seed = 9;
  plan.stores[0].stall_prob = 1.0;
  plan.stores[0].stall_s = 1.0;
  plan.net.drop_prob = 0.01;
  runtime::JobSpec spec = fast_spec();
  spec.replication = 2;
  std::string a;
  std::string b;
  const runtime::JobSummary first = run_job(dataset, &plan, &a, spec);
  (void)run_job(dataset, &plan, &b, spec);
  EXPECT_EQ(first.status, runtime::JobStatus::kDegraded);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// ---- no-work-lost invariant (death tests) ----------------------------------

using NoWorkLostDeathTest = ::testing::Test;

TEST(NoWorkLostDeathTest, FiresWhenProcessedRecordsGoMissing) {
  runtime::JobSummary summary;
  summary.records = 10;
  summary.processed = {4, 5};  // one record vanished
  EXPECT_DEATH(runtime::verify_no_work_lost(summary),
               "HETSIM CHECK failed: processed == summary.records");
}

TEST(NoWorkLostDeathTest, PassesWhenEveryRecordIsAccountedFor) {
  runtime::JobSummary summary;
  summary.records = 10;
  summary.processed = {4, 6};
  runtime::verify_no_work_lost(summary);  // must not abort
}

}  // namespace
}  // namespace hetsim

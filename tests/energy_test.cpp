// Tests for the solar trace simulator and the green-energy estimator.
#include <gtest/gtest.h>

#include "cluster/node.h"
#include "common/error.h"
#include "energy/estimator.h"
#include "energy/solar.h"

namespace hetsim::energy {
namespace {

LocationSpec sunny() {
  LocationSpec loc;
  loc.name = "sunny";
  loc.panel_watts_peak = 400.0;
  loc.mean_cloud_cover = 0.0;
  loc.cloud_volatility = 0.0;
  loc.sunrise_hour = 6.0;
  loc.sunset_hour = 18.0;
  loc.seed = 1;
  return loc;
}

TEST(Solar, AttenuationBoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(cloud_attenuation(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cloud_attenuation(1.0), 0.25);
  EXPECT_GT(cloud_attenuation(0.3), cloud_attenuation(0.7));
  // Clamped outside [0,1].
  EXPECT_DOUBLE_EQ(cloud_attenuation(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(cloud_attenuation(2.0), 0.25);
}

TEST(Solar, ClearSkyZeroAtNightPeakAtNoon) {
  const LocationSpec loc = sunny();
  EXPECT_DOUBLE_EQ(clear_sky_watts(loc, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(clear_sky_watts(loc, 23.0), 0.0);
  EXPECT_NEAR(clear_sky_watts(loc, 12.0), 400.0, 1e-9);
  EXPECT_GT(clear_sky_watts(loc, 9.0), 0.0);
  EXPECT_LT(clear_sky_watts(loc, 9.0), 400.0);
}

TEST(Solar, TraceIsDeterministic) {
  const auto locs = datacenter_locations();
  const EnergyTrace a = EnergyTrace::generate(locs[0], 48);
  const EnergyTrace b = EnergyTrace::generate(locs[0], 48);
  EXPECT_EQ(a.hourly_watts(), b.hourly_watts());
}

TEST(Solar, TraceFollowsDiurnalCycle) {
  const EnergyTrace t = EnergyTrace::generate(sunny(), 24);
  // Night hours produce nothing; midday produces close to peak.
  EXPECT_DOUBLE_EQ(t.hourly_watts()[2], 0.0);
  EXPECT_GT(t.hourly_watts()[12], 350.0);
}

TEST(Solar, CloudierLocationsHarvestLess) {
  const auto locs = datacenter_locations();
  ASSERT_EQ(locs.size(), 4u);
  double first = 0.0, last = 0.0;
  const EnergyTrace sunny_trace = EnergyTrace::generate(locs[0], 72);
  const EnergyTrace cloudy_trace = EnergyTrace::generate(locs[3], 72);
  for (const double w : sunny_trace.hourly_watts()) first += w;
  for (const double w : cloudy_trace.hourly_watts()) last += w;
  EXPECT_GT(first, last);
}

TEST(Solar, GreenEnergyIntegralMatchesHand) {
  const EnergyTrace t = EnergyTrace::generate(sunny(), 24);
  // Integrating exactly one hour at hour 12 = watts * 3600.
  const double j = t.green_energy_joules(12.0 * 3600.0, 3600.0);
  EXPECT_NEAR(j, t.hourly_watts()[12] * 3600.0, 1e-6);
  // Half-hour spanning an hour boundary picks up both rates.
  const double spanning = t.green_energy_joules(12.5 * 3600.0, 3600.0);
  EXPECT_NEAR(spanning,
              t.hourly_watts()[12] * 1800.0 + t.hourly_watts()[13] * 1800.0,
              1e-6);
}

TEST(Solar, TraceWrapsAround) {
  const EnergyTrace t = EnergyTrace::generate(sunny(), 24);
  EXPECT_DOUBLE_EQ(t.green_watts(0.0), t.green_watts(24.0 * 3600.0));
}

TEST(Solar, MeanWattsIsTimeAverage) {
  const EnergyTrace t = EnergyTrace::generate(sunny(), 24);
  const double mean = t.mean_watts(10.0 * 3600.0, 4.0 * 3600.0);
  const double integral = t.green_energy_joules(10.0 * 3600.0, 4.0 * 3600.0);
  EXPECT_NEAR(mean, integral / (4.0 * 3600.0), 1e-9);
}

TEST(Solar, RejectsBadSpecs) {
  LocationSpec bad = sunny();
  bad.sunset_hour = bad.sunrise_hour - 1;
  EXPECT_THROW((void)EnergyTrace::generate(bad, 24), common::ConfigError);
  EXPECT_THROW((void)EnergyTrace::generate(sunny(), 0), common::ConfigError);
}

class EstimatorTest : public ::testing::Test {
 protected:
  GreenEnergyEstimator est_ = GreenEnergyEstimator::standard(72);
  cluster::NodeSpec node_ =
      cluster::standard_node(0, cluster::NodeType::kType1, 0);
};

TEST_F(EstimatorTest, DirtyRateIsPowerMinusMeanGreen) {
  const double t0 = 10 * 3600.0;
  const double window = 4 * 3600.0;
  const double mean = est_.mean_green_watts(node_, t0, window);
  EXPECT_NEAR(est_.dirty_rate(node_, t0, window), node_.power_watts - mean,
              1e-9);
  EXPECT_GT(mean, 0.0);  // daytime window harvests something
}

TEST_F(EstimatorTest, DirtyEnergyNeverNegative) {
  // Even with a tiny node draw, dirty energy is clamped at zero per hour.
  cluster::NodeSpec tiny = node_;
  tiny.power_watts = 1.0;
  const double dirty = est_.dirty_energy_joules(tiny, 12 * 3600.0, 3600.0);
  EXPECT_GE(dirty, 0.0);
  EXPECT_LT(dirty, 1.0 * 3600.0 + 1e-9);
}

TEST_F(EstimatorTest, NightRunsAreFullyDirty) {
  const double dirty = est_.dirty_energy_joules(node_, 0.0, 3600.0);
  EXPECT_NEAR(dirty, node_.power_watts * 3600.0, 1e-6);
}

TEST_F(EstimatorTest, DaytimeRunsAreCleanerThanNight) {
  const double day = est_.dirty_energy_joules(node_, 12 * 3600.0, 3600.0);
  const double night = est_.dirty_energy_joules(node_, 0.0, 3600.0);
  EXPECT_LT(day, night);
}

TEST_F(EstimatorTest, LocationsDifferInDirtyRate) {
  cluster::NodeSpec a = node_;
  a.location = 0;
  cluster::NodeSpec b = node_;
  b.location = 3;
  const double t0 = 10 * 3600.0, w = 4 * 3600.0;
  EXPECT_NE(est_.dirty_rate(a, t0, w), est_.dirty_rate(b, t0, w));
}

TEST_F(EstimatorTest, RejectsUnknownLocation) {
  cluster::NodeSpec bad = node_;
  bad.location = 99;
  EXPECT_THROW((void)est_.dirty_rate(bad, 0, 3600), common::ConfigError);
}

}  // namespace
}  // namespace hetsim::energy

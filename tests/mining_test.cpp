// Tests for Apriori and the SON distributed mining algorithm, including
// a brute-force cross-check of Apriori's output and SON's completeness
// guarantee (union of local frequents superset of global frequents).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "data/generators.h"
#include "mining/apriori.h"
#include "mining/son.h"

namespace hetsim::mining {
namespace {

using data::ItemSet;

std::vector<ItemSet> classic_market_basket() {
  // Agrawal-style toy transactions.
  return {
      {1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3}, {2, 3}, {1, 3},
      {1, 2, 3, 5}, {1, 2, 3},
  };
}

std::map<ItemSet, std::uint32_t> as_map(const std::vector<Pattern>& patterns) {
  std::map<ItemSet, std::uint32_t> m;
  for (const auto& p : patterns) m[p.items] = p.support;
  return m;
}

TEST(Apriori, TextbookExample) {
  AprioriConfig cfg;
  cfg.min_support = 2.0 / 9.0;  // absolute support 2
  const MiningResult r = apriori(classic_market_basket(), cfg);
  const auto m = as_map(r.frequent);
  // Known frequent itemsets at support 2 (from the Apriori paper walk).
  EXPECT_EQ(m.at({1}), 6u);
  EXPECT_EQ(m.at({2}), 7u);
  EXPECT_EQ(m.at({3}), 6u);
  EXPECT_EQ(m.at({4}), 2u);
  EXPECT_EQ(m.at({5}), 2u);
  EXPECT_EQ(m.at({1, 2}), 4u);
  EXPECT_EQ(m.at({1, 3}), 4u);
  EXPECT_EQ(m.at({2, 3}), 4u);
  EXPECT_EQ(m.at({1, 5}), 2u);
  EXPECT_EQ(m.at({2, 5}), 2u);
  EXPECT_EQ(m.at({2, 4}), 2u);
  EXPECT_EQ(m.at({1, 2, 3}), 2u);
  EXPECT_EQ(m.at({1, 2, 5}), 2u);
  EXPECT_EQ(m.count({3, 5}), 0u);  // support 1, must be absent
  EXPECT_EQ(m.size(), 13u);
}

/// Brute force: count every subset up to length 3 directly.
std::map<ItemSet, std::uint32_t> brute_force(const std::vector<ItemSet>& txns,
                                             std::uint32_t min_count,
                                             std::size_t max_len) {
  std::map<ItemSet, std::uint32_t> counts;
  for (const auto& t : txns) {
    const std::size_t n = t.size();
    for (std::size_t i = 0; i < n; ++i) {
      ++counts[{t[i]}];
      if (max_len < 2) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        ++counts[{t[i], t[j]}];
        if (max_len < 3) continue;
        for (std::size_t k = j + 1; k < n; ++k) {
          ++counts[{t[i], t[j], t[k]}];
        }
      }
    }
  }
  std::map<ItemSet, std::uint32_t> frequent;
  for (const auto& [items, c] : counts) {
    if (c >= min_count) frequent[items] = c;
  }
  return frequent;
}

TEST(Apriori, MatchesBruteForceOnRandomData) {
  common::Rng rng(77);
  std::vector<ItemSet> txns;
  for (int i = 0; i < 200; ++i) {
    ItemSet t;
    const std::size_t len = 2 + rng.bounded(6);
    for (std::size_t j = 0; j < len; ++j) {
      t.push_back(static_cast<data::Item>(rng.zipf(20, 1.0)));
    }
    data::normalize(t);
    txns.push_back(std::move(t));
  }
  AprioriConfig cfg;
  cfg.min_support = 0.05;  // absolute 10
  cfg.max_pattern_length = 3;
  const MiningResult r = apriori(txns, cfg);
  const auto expected = brute_force(txns, 10, 3);
  EXPECT_EQ(as_map(r.frequent), expected);
}

TEST(Apriori, SupportsAreExact) {
  const auto txns = classic_market_basket();
  AprioriConfig cfg;
  cfg.min_support = 1.0 / 9.0;
  const MiningResult r = apriori(txns, cfg);
  std::uint64_t ops = 0;
  for (const auto& p : r.frequent) {
    const std::vector<ItemSet> single{p.items};
    const auto counts = count_support(txns, single, ops);
    EXPECT_EQ(counts[0], p.support) << "pattern size " << p.items.size();
  }
}

TEST(Apriori, EmptyInputYieldsNothing) {
  const MiningResult r = apriori({}, {});
  EXPECT_TRUE(r.frequent.empty());
}

TEST(Apriori, FullSupportFindsUniversalItems) {
  std::vector<ItemSet> txns(10, ItemSet{1, 2});
  AprioriConfig cfg;
  cfg.min_support = 1.0;
  const MiningResult r = apriori(txns, cfg);
  const auto m = as_map(r.frequent);
  EXPECT_EQ(m.at({1}), 10u);
  EXPECT_EQ(m.at({1, 2}), 10u);
}

TEST(Apriori, MaxPatternLengthCaps) {
  std::vector<ItemSet> txns(10, ItemSet{1, 2, 3, 4});
  AprioriConfig cfg;
  cfg.min_support = 1.0;
  cfg.max_pattern_length = 2;
  const MiningResult r = apriori(txns, cfg);
  for (const auto& p : r.frequent) EXPECT_LE(p.items.size(), 2u);
}

TEST(Apriori, WorkGrowsWithLowerSupport) {
  const data::Dataset ds = data::generate_text_corpus(data::rcv1_like(0.02));
  std::vector<ItemSet> txns;
  for (const auto& rec : ds.records) txns.push_back(rec.items);
  AprioriConfig high;
  high.min_support = 0.2;
  AprioriConfig low;
  low.min_support = 0.05;
  const MiningResult rh = apriori(txns, high);
  const MiningResult rl = apriori(txns, low);
  EXPECT_GT(rl.work_ops, rh.work_ops);
  EXPECT_GE(rl.frequent.size(), rh.frequent.size());
}

TEST(Apriori, RejectsBadConfig) {
  AprioriConfig bad;
  bad.min_support = 0.0;
  EXPECT_THROW((void)apriori(classic_market_basket(), bad),
               common::ConfigError);
}

TEST(CountSupport, CountsSubsetContainment) {
  const auto txns = classic_market_basket();
  std::uint64_t ops = 0;
  const std::vector<ItemSet> candidates{{1}, {1, 2}, {9}};
  const auto counts = count_support(txns, candidates, ops);
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{6, 4, 0}));
  EXPECT_EQ(ops, txns.size() * candidates.size());
}

// ---- SON -------------------------------------------------------------------

std::vector<std::vector<ItemSet>> split(const std::vector<ItemSet>& txns,
                                        std::size_t parts) {
  std::vector<std::vector<ItemSet>> out(parts);
  for (std::size_t i = 0; i < txns.size(); ++i) {
    out[i % parts].push_back(txns[i]);
  }
  return out;
}

TEST(Son, MatchesSingleMachineApriori) {
  const data::Dataset ds = data::generate_text_corpus(data::rcv1_like(0.02));
  std::vector<ItemSet> txns;
  for (const auto& rec : ds.records) txns.push_back(rec.items);
  AprioriConfig cfg;
  cfg.min_support = 0.08;
  cfg.max_pattern_length = 3;
  const MiningResult direct = apriori(txns, cfg);
  for (const std::size_t parts : {2u, 4u, 8u}) {
    const auto partitions = split(txns, parts);
    const SonResult son = son_mine(partitions, cfg);
    EXPECT_EQ(as_map(son.frequent), as_map(direct.frequent))
        << parts << " partitions";
  }
}

TEST(Son, CompletenessUnionCoversGlobal) {
  const auto txns = classic_market_basket();
  AprioriConfig cfg;
  cfg.min_support = 2.0 / 9.0;
  const auto partitions = split(txns, 3);
  const SonResult son = son_mine(partitions, cfg);
  const MiningResult direct = apriori(txns, cfg);
  // Every globally frequent pattern must appear in the candidate union:
  // union = frequent + false positives.
  EXPECT_EQ(son.union_candidates, son.frequent.size() + son.false_positives);
  EXPECT_EQ(as_map(son.frequent), as_map(direct.frequent));
}

TEST(Son, SkewedPartitionsInflateFalsePositives) {
  // Build two topic blocks; skewed split puts each topic in its own
  // partition, balanced split mixes them.
  common::Rng rng(5);
  std::vector<ItemSet> topic_a, topic_b;
  for (int i = 0; i < 150; ++i) {
    ItemSet t;
    for (int j = 0; j < 5; ++j) {
      t.push_back(static_cast<data::Item>(rng.zipf(15, 1.2)));
    }
    data::normalize(t);
    topic_a.push_back(t);
    ItemSet u;
    for (int j = 0; j < 5; ++j) {
      u.push_back(static_cast<data::Item>(100 + rng.zipf(15, 1.2)));
    }
    data::normalize(u);
    topic_b.push_back(u);
  }
  AprioriConfig cfg;
  cfg.min_support = 0.1;
  // Skewed: partition 0 = all of topic A, partition 1 = all of topic B.
  const std::vector<std::vector<ItemSet>> skewed{topic_a, topic_b};
  // Balanced: each partition gets half of each topic.
  std::vector<std::vector<ItemSet>> balanced(2);
  for (int i = 0; i < 150; ++i) {
    balanced[i % 2].push_back(topic_a[i]);
    balanced[(i + 1) % 2].push_back(topic_b[i]);
  }
  const SonResult s_skew = son_mine(skewed, cfg);
  const SonResult s_bal = son_mine(balanced, cfg);
  EXPECT_GT(s_skew.false_positives, s_bal.false_positives);
  EXPECT_EQ(as_map(s_skew.frequent), as_map(s_bal.frequent));
}

TEST(Son, TracksPerPartitionWork) {
  const auto txns = classic_market_basket();
  AprioriConfig cfg;
  cfg.min_support = 0.2;
  const auto partitions = split(txns, 3);
  const SonResult son = son_mine(partitions, cfg);
  EXPECT_EQ(son.local_work.size(), 3u);
  EXPECT_EQ(son.global_work.size(), 3u);
  for (const auto w : son.local_work) EXPECT_GT(w, 0u);
}

TEST(Son, EmptyPartitionTolerated) {
  const auto txns = classic_market_basket();
  std::vector<std::vector<ItemSet>> partitions{txns, {}};
  AprioriConfig cfg;
  cfg.min_support = 2.0 / 9.0;
  const SonResult son = son_mine(partitions, cfg);
  const MiningResult direct = apriori(txns, cfg);
  EXPECT_EQ(as_map(son.frequent), as_map(direct.frequent));
}

TEST(CandidateUnion, Dedupes) {
  MiningResult a, b;
  a.frequent = {Pattern{{1}, 3}, Pattern{{1, 2}, 2}};
  b.frequent = {Pattern{{1}, 4}, Pattern{{3}, 2}};
  const std::vector<MiningResult> locals{a, b};
  const auto u = candidate_union(locals);
  EXPECT_EQ(u, (std::vector<ItemSet>{{1}, {1, 2}, {3}}));
}

}  // namespace
}  // namespace hetsim::mining

// Tests for the JSON writer and the report serializers.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/json.h"
#include "core/report_io.h"

namespace hetsim {
namespace {

using common::JsonWriter;

TEST(Json, FlatObject) {
  JsonWriter w;
  w.begin_object()
      .field("a", 1)
      .field("b", "two")
      .field("c", 2.5)
      .field("d", true)
      .end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":2.5,"d":true})");
}

TEST(Json, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list").begin_array().value(1).value(2).end_array();
  w.key("obj").begin_object().field("x", 0).end_object();
  w.key("none").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2],"obj":{"x":0},"none":null})");
}

TEST(Json, EmptyContainers) {
  JsonWriter w;
  w.begin_object()
      .key("a")
      .begin_array()
      .end_array()
      .key("o")
      .begin_object()
      .end_object()
      .end_object();
  EXPECT_EQ(w.str(), R"({"a":[],"o":{}})");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(common::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(common::json_escape(std::string_view("\x01", 1)), "\\u0001");
  JsonWriter w;
  w.begin_array().value("quo\"te").end_array();
  EXPECT_EQ(w.str(), "[\"quo\\\"te\"]");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::numeric_limits<double>::infinity()).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(Json, UnbalancedContainersThrow) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW((void)w.str(), common::ConfigError);
  JsonWriter v;
  EXPECT_THROW(v.end_object(), common::ConfigError);
}

TEST(ReportIo, JobReportRoundsTheCorners) {
  core::JobReport r;
  r.strategy = core::Strategy::kHetAware;
  r.workload = "test-workload";
  r.partition_sizes = {10, 20};
  r.exec_time_s = 1.5;
  r.load_time_s = 0.25;
  r.dirty_energy_j = 100.0;
  r.green_energy_j = 50.0;
  r.quality = 3.0;
  r.total_work_units = 1e6;
  r.node_exec_s = {1.5, 0.75};
  const std::string json = core::to_json(r);
  EXPECT_NE(json.find(R"("strategy":"Het-Aware")"), std::string::npos);
  EXPECT_NE(json.find(R"("partition_sizes":[10,20])"), std::string::npos);
  EXPECT_NE(json.find(R"("total_energy_j":150)"), std::string::npos);
  EXPECT_NE(json.find(R"("node_exec_s":[1.5,0.75])"), std::string::npos);
}

TEST(ReportIo, PhaseReportSerializes) {
  cluster::PhaseReport p;
  p.name = "exec";
  p.per_node.push_back(
      {.node_id = 0, .work_units = 10, .compute_time_s = 1, .network_time_s = 2});
  const std::string json = core::to_json(p);
  EXPECT_NE(json.find(R"("name":"exec")"), std::string::npos);
  EXPECT_NE(json.find(R"("makespan_s":3)"), std::string::npos);
  EXPECT_NE(json.find(R"("network_s":2)"), std::string::npos);
}

TEST(ReportIo, FrontierSerializesAsArray) {
  std::vector<optimize::FrontierPoint> frontier(2);
  frontier[0].alpha = 1.0;
  frontier[0].makespan_s = 0.5;
  frontier[1].alpha = 0.5;
  frontier[1].dirty_joules = 42.0;
  const std::string json = core::frontier_to_json(frontier);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find(R"("alpha":0.5)"), std::string::npos);
  EXPECT_NE(json.find(R"("dirty_joules":42)"), std::string::npos);
}

}  // namespace
}  // namespace hetsim

// Tests for the progressive-sampling heterogeneity estimator: the fitted
// per-node models must recover the ground-truth work profile and the
// cluster's speed ratios.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/error.h"
#include "estimator/progressive.h"
#include "stratify/kmodes.h"

namespace hetsim::estimator {
namespace {

stratify::Stratification uniform_strat(std::size_t n, std::uint32_t k) {
  stratify::Stratification s;
  s.assignment.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.assignment[i] = static_cast<std::uint32_t>(i % k);
  }
  s.num_strata = k;
  s.stratum_sizes.assign(k, 0);
  for (const auto a : s.assignment) ++s.stratum_sizes[a];
  return s;
}

TEST(Progressive, RecoversLinearWorkProfile) {
  cluster::Cluster c(cluster::standard_cluster(4));
  const auto strat = uniform_strat(100000, 8);
  // Ground truth: 3 work units per record + 1000 fixed units.
  const SampleRunner runner = [](cluster::NodeContext& ctx,
                                 std::span<const std::uint32_t> indices) {
    ctx.meter().add(1000.0 + 3.0 * static_cast<double>(indices.size()));
  };
  const auto models = estimate_time_models(c, strat, runner);
  ASSERT_EQ(models.size(), 4u);
  const double base_rate = c.options().work_rate.base_rate;
  for (const auto& m : models) {
    const double speed = c.node(m.node_id).speed;
    // slope = 3 / (base_rate * speed)
    EXPECT_NEAR(m.fit.slope, 3.0 / (base_rate * speed), 1e-9)
        << "node " << m.node_id;
    EXPECT_GT(m.fit.r2, 0.999);
  }
}

TEST(Progressive, SlopesReflectSpeedRatios) {
  cluster::Cluster c(cluster::standard_cluster(4));  // speeds 4,3,2,1
  const auto strat = uniform_strat(50000, 4);
  const SampleRunner runner = [](cluster::NodeContext& ctx,
                                 std::span<const std::uint32_t> indices) {
    ctx.meter().add(static_cast<double>(indices.size()));
  };
  const auto models = estimate_time_models(c, strat, runner);
  EXPECT_NEAR(models[3].fit.slope / models[0].fit.slope, 4.0, 1e-6);
  EXPECT_NEAR(models[2].fit.slope / models[1].fit.slope, 1.5, 1e-6);
}

TEST(Progressive, SampleSizesSpanConfiguredRange) {
  cluster::Cluster c(cluster::standard_cluster(2));
  const std::size_t n = 200000;
  const auto strat = uniform_strat(n, 4);
  SampleSpec spec;
  spec.min_fraction = 0.001;
  spec.max_fraction = 0.02;
  spec.steps = 5;
  const SampleRunner runner = [](cluster::NodeContext& ctx,
                                 std::span<const std::uint32_t> indices) {
    ctx.meter().add(static_cast<double>(indices.size()));
  };
  const auto models = estimate_time_models(c, strat, runner, spec);
  ASSERT_EQ(models[0].sample_sizes.size(), 5u);
  EXPECT_NEAR(models[0].sample_sizes.front(), 0.001 * n, 2.0);
  EXPECT_NEAR(models[0].sample_sizes.back(), 0.02 * n, 2.0);
  // Strictly increasing sizes.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_GT(models[0].sample_sizes[i], models[0].sample_sizes[i - 1]);
  }
}

TEST(Progressive, EstimationAdvancesClusterClock) {
  cluster::Cluster c(cluster::standard_cluster(2));
  const auto strat = uniform_strat(10000, 2);
  const SampleRunner runner = [](cluster::NodeContext& ctx,
                                 std::span<const std::uint32_t> indices) {
    ctx.meter().add(static_cast<double>(indices.size()));
  };
  const double before = c.now();
  (void)estimate_time_models(c, strat, runner);
  EXPECT_GT(c.now(), before);
}

TEST(Progressive, NegativeInterceptClampedToZero) {
  cluster::Cluster c(cluster::standard_cluster(2));
  const auto strat = uniform_strat(100000, 2);
  // Superlinear work produces a linear fit with a negative intercept.
  const SampleRunner runner = [](cluster::NodeContext& ctx,
                                 std::span<const std::uint32_t> indices) {
    const double n = static_cast<double>(indices.size());
    ctx.meter().add(n * n / 500.0);
  };
  const auto models = estimate_time_models(c, strat, runner);
  for (const auto& m : models) EXPECT_GE(m.fit.intercept, 0.0);
}

TEST(Progressive, PredictSecondsExtrapolates) {
  cluster::Cluster c(cluster::standard_cluster(1));
  const auto strat = uniform_strat(100000, 2);
  const SampleRunner runner = [](cluster::NodeContext& ctx,
                                 std::span<const std::uint32_t> indices) {
    ctx.meter().add(2.0 * static_cast<double>(indices.size()));
  };
  const auto models = estimate_time_models(c, strat, runner);
  const double base_rate = c.options().work_rate.base_rate;
  const double speed = c.node(0).speed;
  EXPECT_NEAR(models[0].predict_seconds(1e6),
              2e6 / (base_rate * speed), 1e-3);
}

TEST(Progressive, LooErrorNearZeroForLinearProfile) {
  cluster::Cluster c(cluster::standard_cluster(2));
  const auto strat = uniform_strat(100000, 4);
  const SampleRunner runner = [](cluster::NodeContext& ctx,
                                 std::span<const std::uint32_t> indices) {
    ctx.meter().add(5.0 * static_cast<double>(indices.size()) + 100.0);
  };
  const auto models = estimate_time_models(c, strat, runner);
  for (const auto& m : models) {
    EXPECT_LT(loo_relative_error(m), 1e-6);
  }
}

TEST(Progressive, LooErrorFlagsNonlinearProfile) {
  cluster::Cluster c(cluster::standard_cluster(1));
  const auto strat = uniform_strat(100000, 4);
  SampleSpec spec;
  spec.min_fraction = 0.001;
  spec.max_fraction = 0.05;
  spec.steps = 6;
  const SampleRunner cubic = [](cluster::NodeContext& ctx,
                                std::span<const std::uint32_t> indices) {
    const double n = static_cast<double>(indices.size());
    ctx.meter().add(n * n * n / 1e4);
  };
  const auto models = estimate_time_models(c, strat, cubic, spec);
  EXPECT_GT(loo_relative_error(models[0]), 0.05);
}

TEST(Progressive, LooNeedsThreePoints) {
  NodeTimeModel tiny;
  tiny.sample_sizes = {1.0, 2.0};
  tiny.times_s = {1.0, 2.0};
  EXPECT_THROW((void)loo_relative_error(tiny), common::ConfigError);
}

TEST(Progressive, RejectsBadSpecs) {
  cluster::Cluster c(cluster::standard_cluster(2));
  const auto strat = uniform_strat(100, 2);
  const SampleRunner runner = [](cluster::NodeContext& ctx,
                                 std::span<const std::uint32_t>) {
    ctx.meter().add(1.0);
  };
  SampleSpec bad;
  bad.steps = 1;
  EXPECT_THROW((void)estimate_time_models(c, strat, runner, bad),
               common::ConfigError);
  bad = SampleSpec{};
  bad.min_fraction = 0.5;
  bad.max_fraction = 0.1;
  EXPECT_THROW((void)estimate_time_models(c, strat, runner, bad),
               common::ConfigError);
  EXPECT_THROW((void)estimate_time_models(c, strat, nullptr, SampleSpec{}),
               common::ConfigError);
}

}  // namespace
}  // namespace hetsim::estimator

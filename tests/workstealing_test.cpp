// Tests for the work-stealing baseline simulator.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "core/workstealing.h"

namespace hetsim::core {
namespace {

cluster::Cluster make_cluster(std::uint32_t n) {
  return cluster::Cluster(cluster::standard_cluster(n));
}

std::vector<ChunkCost> uniform_chunks(std::size_t n, double work,
                                      double bytes) {
  return std::vector<ChunkCost>(n, ChunkCost{work, bytes});
}

TEST(WorkStealing, EmptyInputIsNoOp) {
  auto c = make_cluster(4);
  const auto report = simulate_work_stealing(c, {});
  EXPECT_EQ(report.makespan_s, 0.0);
  EXPECT_EQ(report.steals, 0u);
}

TEST(WorkStealing, SingleNodeProcessesEverything) {
  auto c = make_cluster(1);
  const auto chunks = uniform_chunks(10, 1e6, 100.0);
  const auto report = simulate_work_stealing(c, chunks);
  // Node 0 is type 1, speed 4: 10 Mu / (1e6 u/s * 4) = 2.5 s.
  EXPECT_NEAR(report.makespan_s, 2.5, 1e-9);
  EXPECT_EQ(report.steals, 0u);
}

TEST(WorkStealing, StealsBalanceHeterogeneousNodes) {
  auto c = make_cluster(4);  // speeds 4/3/2/1
  const auto chunks = uniform_chunks(40, 1e6, 1000.0);
  const auto report = simulate_work_stealing(c, chunks);
  EXPECT_GT(report.steals, 0u);
  // Without stealing, equal deal gives the slow node 10 Mu -> 10 s.
  // Stealing should get the makespan well below that and near the ideal
  // 40 Mu / (10 speed-units * 1e6) = 4 s.
  EXPECT_LT(report.makespan_s, 7.0);
  EXPECT_GE(report.makespan_s, 4.0 - 1e-9);
}

TEST(WorkStealing, MigrationAccounted) {
  auto c = make_cluster(2);  // speeds 4 and 3
  const auto chunks = uniform_chunks(16, 1e6, 1e6);  // 1 MB chunks
  const auto report = simulate_work_stealing(c, chunks);
  if (report.steals > 0) {
    EXPECT_GT(report.migrated_bytes, 0.0);
    EXPECT_GT(report.migration_time_s, 0.0);
    EXPECT_NEAR(report.migrated_bytes,
                static_cast<double>(report.steals) * 1e6, 1e-6);
  }
}

TEST(WorkStealing, DeterministicAcrossRuns) {
  auto c1 = make_cluster(4);
  auto c2 = make_cluster(4);
  const auto chunks = uniform_chunks(23, 7.7e5, 512.0);
  const auto a = simulate_work_stealing(c1, chunks);
  const auto b = simulate_work_stealing(c2, chunks);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.steals, b.steals);
}

TEST(WorkStealing, SkewedChunksStillComplete) {
  auto c = make_cluster(4);
  std::vector<ChunkCost> chunks;
  for (std::size_t i = 0; i < 20; ++i) {
    chunks.push_back({static_cast<double>((i % 5 + 1)) * 1e5, 64.0});
  }
  const auto report = simulate_work_stealing(c, chunks);
  // All work accounted: busy time >= total work at fastest speed.
  const double total_work =
      std::accumulate(chunks.begin(), chunks.end(), 0.0,
                      [](double acc, const ChunkCost& ch) {
                        return acc + ch.work_units;
                      });
  double total_busy = 0;
  for (const double t : report.node_busy_s) total_busy += t;
  EXPECT_GE(total_busy, total_work / (1e6 * 4.0) - 1e-9);
}

TEST(WorkStealing, MoreChunksImproveBalance) {
  auto c = make_cluster(4);
  const auto coarse = simulate_work_stealing(
      c, uniform_chunks(8, 1e6, 100.0), {.chunks_per_node = 2});
  const auto fine = simulate_work_stealing(
      c, uniform_chunks(64, 1.25e5, 100.0), {.chunks_per_node = 16});
  EXPECT_LE(fine.makespan_s, coarse.makespan_s + 1e-9);
}

TEST(WorkStealing, RejectsBadOptions) {
  auto c = make_cluster(2);
  EXPECT_THROW((void)simulate_work_stealing(c, uniform_chunks(4, 1, 1),
                                            {.chunks_per_node = 0}),
               common::ConfigError);
}

}  // namespace
}  // namespace hetsim::core

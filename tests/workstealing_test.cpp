// Tests for the work-stealing baseline simulator.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "core/workstealing.h"

namespace hetsim::core {
namespace {

cluster::Cluster make_cluster(std::uint32_t n) {
  return cluster::Cluster(cluster::standard_cluster(n));
}

std::vector<ChunkCost> uniform_chunks(std::size_t n, double work,
                                      double bytes) {
  return std::vector<ChunkCost>(n, ChunkCost{work, bytes});
}

TEST(WorkStealing, EmptyInputIsNoOp) {
  auto c = make_cluster(4);
  const auto report = simulate_work_stealing(c, {});
  EXPECT_EQ(report.makespan_s, 0.0);
  EXPECT_EQ(report.steals, 0u);
}

TEST(WorkStealing, SingleNodeProcessesEverything) {
  auto c = make_cluster(1);
  const auto chunks = uniform_chunks(10, 1e6, 100.0);
  const auto report = simulate_work_stealing(c, chunks);
  // Node 0 is type 1, speed 4: 10 Mu / (1e6 u/s * 4) = 2.5 s.
  EXPECT_NEAR(report.makespan_s, 2.5, 1e-9);
  EXPECT_EQ(report.steals, 0u);
}

TEST(WorkStealing, StealsBalanceHeterogeneousNodes) {
  auto c = make_cluster(4);  // speeds 4/3/2/1
  const auto chunks = uniform_chunks(40, 1e6, 1000.0);
  const auto report = simulate_work_stealing(c, chunks);
  EXPECT_GT(report.steals, 0u);
  // Without stealing, equal deal gives the slow node 10 Mu -> 10 s.
  // Stealing should get the makespan well below that and near the ideal
  // 40 Mu / (10 speed-units * 1e6) = 4 s.
  EXPECT_LT(report.makespan_s, 7.0);
  EXPECT_GE(report.makespan_s, 4.0 - 1e-9);
}

TEST(WorkStealing, MigrationAccounted) {
  auto c = make_cluster(2);  // speeds 4 and 3
  const auto chunks = uniform_chunks(16, 1e6, 1e6);  // 1 MB chunks
  const auto report = simulate_work_stealing(c, chunks);
  if (report.steals > 0) {
    EXPECT_GT(report.migrated_bytes, 0.0);
    EXPECT_GT(report.migration_time_s, 0.0);
    EXPECT_NEAR(report.migrated_bytes,
                static_cast<double>(report.steals) * 1e6, 1e-6);
  }
}

TEST(WorkStealing, DeterministicAcrossRuns) {
  auto c1 = make_cluster(4);
  auto c2 = make_cluster(4);
  const auto chunks = uniform_chunks(23, 7.7e5, 512.0);
  const auto a = simulate_work_stealing(c1, chunks);
  const auto b = simulate_work_stealing(c2, chunks);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.steals, b.steals);
}

TEST(WorkStealing, SkewedChunksStillComplete) {
  auto c = make_cluster(4);
  std::vector<ChunkCost> chunks;
  for (std::size_t i = 0; i < 20; ++i) {
    chunks.push_back({static_cast<double>((i % 5 + 1)) * 1e5, 64.0});
  }
  const auto report = simulate_work_stealing(c, chunks);
  // All work accounted: busy time >= total work at fastest speed.
  const double total_work =
      std::accumulate(chunks.begin(), chunks.end(), 0.0,
                      [](double acc, const ChunkCost& ch) {
                        return acc + ch.work_units;
                      });
  double total_busy = 0;
  for (const double t : report.node_busy_s) total_busy += t;
  EXPECT_GE(total_busy, total_work / (1e6 * 4.0) - 1e-9);
}

TEST(WorkStealing, MoreChunksImproveBalance) {
  auto c = make_cluster(4);
  const auto coarse = simulate_work_stealing(
      c, uniform_chunks(8, 1e6, 100.0), {.chunks_per_node = 2});
  const auto fine = simulate_work_stealing(
      c, uniform_chunks(64, 1.25e5, 100.0), {.chunks_per_node = 16});
  EXPECT_LE(fine.makespan_s, coarse.makespan_s + 1e-9);
}

TEST(WorkStealing, RandomVictimIsSeededAndReproducible) {
  const auto chunks = uniform_chunks(40, 1e6, 1000.0);
  const WorkStealingOptions opts{.policy = StealPolicy::kRandomVictim,
                                 .seed = 42};
  auto c1 = make_cluster(4);
  auto c2 = make_cluster(4);
  const auto a = simulate_work_stealing(c1, chunks, opts);
  const auto b = simulate_work_stealing(c2, chunks, opts);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.steals, b.steals);
  EXPECT_DOUBLE_EQ(a.migrated_bytes, b.migrated_bytes);
}

TEST(WorkStealing, RandomVictimStillDrainsAllWork) {
  auto c = make_cluster(4);
  std::vector<ChunkCost> chunks;
  for (std::size_t i = 0; i < 30; ++i) {
    chunks.push_back({static_cast<double>((i % 7 + 1)) * 1e5, 128.0});
  }
  const auto report = simulate_work_stealing(
      c, chunks, {.policy = StealPolicy::kRandomVictim, .seed = 7});
  const double total_work =
      std::accumulate(chunks.begin(), chunks.end(), 0.0,
                      [](double acc, const ChunkCost& ch) {
                        return acc + ch.work_units;
                      });
  double total_busy = 0;
  for (const double t : report.node_busy_s) total_busy += t;
  // All chunks got processed somewhere (busy time covers the work even
  // at the fastest speed) and stealing balanced the heterogeneity.
  EXPECT_GE(total_busy, total_work / (1e6 * 4.0) - 1e-9);
  EXPECT_GT(report.steals, 0u);
  EXPECT_LT(report.makespan_s, 2.0 * total_work / (1e6 * 10.0));
}

TEST(WorkStealing, MaxVictimNoWorseThanRandomOnUniformChunks) {
  // Max-victim is the deterministic upper bound the header advertises:
  // on uniform chunks it should not lose to a random victim pick.
  const auto chunks = uniform_chunks(48, 1e6, 512.0);
  auto c1 = make_cluster(4);
  auto c2 = make_cluster(4);
  const auto max_victim = simulate_work_stealing(
      c1, chunks, {.policy = StealPolicy::kMaxVictim});
  const auto random_victim = simulate_work_stealing(
      c2, chunks, {.policy = StealPolicy::kRandomVictim, .seed = 11});
  EXPECT_LE(max_victim.makespan_s, random_victim.makespan_s + 1e-9);
}

TEST(WorkStealing, DifferentSeedsMayDiverge) {
  // Not a strict requirement for any single pair of seeds, but across a
  // handful at least one random-victim schedule should differ from the
  // max-victim one — otherwise the policy knob does nothing.
  const auto chunks = uniform_chunks(40, 1e6, 1000.0);
  auto base_cluster = make_cluster(4);
  const auto base = simulate_work_stealing(
      base_cluster, chunks, {.policy = StealPolicy::kMaxVictim});
  bool diverged = false;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    auto c = make_cluster(4);
    const auto r = simulate_work_stealing(
        c, chunks, {.policy = StealPolicy::kRandomVictim, .seed = seed});
    diverged |= r.makespan_s != base.makespan_s ||
                r.migrated_bytes != base.migrated_bytes;
  }
  EXPECT_TRUE(diverged);
}

TEST(WorkStealing, RejectsBadOptions) {
  auto c = make_cluster(2);
  EXPECT_THROW((void)simulate_work_stealing(c, uniform_chunks(4, 1, 1),
                                            {.chunks_per_node = 0}),
               common::ConfigError);
}

}  // namespace
}  // namespace hetsim::core

// Tests for the FREQT-style frequent subtree miner and the Eclat miner.
#include <gtest/gtest.h>

#include <map>

#include "common/error.h"
#include "common/rng.h"
#include "data/generators.h"
#include "mining/eclat.h"
#include "mining/fpgrowth.h"
#include "mining/treeminer.h"

namespace hetsim::mining {
namespace {

/// Tree builder from (parent, label) pairs; node 0 is the root.
data::LabeledTree make_tree(std::vector<std::uint32_t> parents,
                            std::vector<std::uint32_t> labels) {
  data::LabeledTree t;
  t.parent = std::move(parents);
  t.label = std::move(labels);
  t.validate();
  return t;
}

TreePattern pattern(std::vector<std::pair<std::uint32_t, std::uint32_t>> nodes) {
  TreePattern p;
  p.nodes = std::move(nodes);
  return p;
}

std::map<TreePattern, std::uint32_t> as_map(const TreeMiningResult& r) {
  std::map<TreePattern, std::uint32_t> m;
  for (const auto& f : r.frequent) m[f.pattern] = f.support;
  return m;
}

TEST(TreeMiner, SingleNodePatternsAreLabelSupports) {
  //  a(0) -> b, c ;  a(0) -> b  ;  c alone
  std::vector<data::LabeledTree> corpus{
      make_tree({0, 0, 0}, {1, 2, 3}),
      make_tree({0, 0}, {1, 2}),
      make_tree({0}, {3}),
  };
  const TreeMinerConfig cfg{.min_support = 0.01, .max_pattern_nodes = 1};
  const auto m = as_map(mine_subtrees(corpus, cfg));
  EXPECT_EQ(m.at(pattern({{0, 1}})), 2u);  // label 1 in trees 0,1
  EXPECT_EQ(m.at(pattern({{0, 2}})), 2u);
  EXPECT_EQ(m.at(pattern({{0, 3}})), 2u);  // trees 0 and 2
  EXPECT_EQ(m.size(), 3u);
}

TEST(TreeMiner, FindsPlantedChain) {
  // Every tree contains the chain 5 -> 6 -> 7 plus noise.
  std::vector<data::LabeledTree> corpus;
  common::Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    // nodes: 0 (label 5), 1 (6, child of 0), 2 (7, child of 1) + 3 noise
    std::vector<std::uint32_t> parents{0, 0, 1};
    std::vector<std::uint32_t> labels{5, 6, 7};
    for (int k = 0; k < 3; ++k) {
      parents.push_back(static_cast<std::uint32_t>(rng.bounded(parents.size())));
      labels.push_back(100 + static_cast<std::uint32_t>(rng.bounded(50)));
    }
    corpus.push_back(make_tree(std::move(parents), std::move(labels)));
  }
  const TreeMinerConfig cfg{.min_support = 0.9, .max_pattern_nodes = 3};
  const auto m = as_map(mine_subtrees(corpus, cfg));
  EXPECT_EQ(m.at(pattern({{0, 5}, {1, 6}, {2, 7}})), 20u);
  EXPECT_EQ(m.at(pattern({{0, 5}, {1, 6}})), 20u);
  EXPECT_EQ(m.at(pattern({{0, 6}, {1, 7}})), 20u);
}

TEST(TreeMiner, DistinguishesSiblingsFromChain) {
  // Tree A: root 1 with children 2,3 (siblings). Tree B: 1 -> 2 -> 3.
  std::vector<data::LabeledTree> corpus{
      make_tree({0, 0, 0}, {1, 2, 3}),
      make_tree({0, 0, 1}, {1, 2, 3}),
  };
  const TreeMinerConfig cfg{.min_support = 0.01, .max_pattern_nodes = 3};
  const auto m = as_map(mine_subtrees(corpus, cfg));
  // Sibling pattern (1 with children 2 and 3) only in tree A.
  EXPECT_EQ(m.at(pattern({{0, 1}, {1, 2}, {1, 3}})), 1u);
  // Chain pattern 1 -> 2 -> 3 only in tree B.
  EXPECT_EQ(m.at(pattern({{0, 1}, {1, 2}, {2, 3}})), 1u);
  // Pattern 1 -> 2 in both.
  EXPECT_EQ(m.at(pattern({{0, 1}, {1, 2}})), 2u);
}

TEST(TreeMiner, OrderedSemanticsRespectSiblingOrder) {
  // Node ids define sibling order. Tree A: children (label 2, label 3)
  // in that order; tree B: (3, 2). Induced *ordered* pattern 1(2,3)
  // occurs only in A.
  std::vector<data::LabeledTree> corpus{
      make_tree({0, 0, 0}, {1, 2, 3}),
      make_tree({0, 0, 0}, {1, 3, 2}),
  };
  const TreeMinerConfig cfg{.min_support = 0.01, .max_pattern_nodes = 3};
  const auto m = as_map(mine_subtrees(corpus, cfg));
  EXPECT_EQ(m.at(pattern({{0, 1}, {1, 2}, {1, 3}})), 1u);
  EXPECT_EQ(m.at(pattern({{0, 1}, {1, 3}, {1, 2}})), 1u);
}

TEST(TreeMiner, SupportIsAntiMonotone) {
  const auto trees = data::generate_trees(data::swissprot_like(0.05));
  const TreeMinerConfig cfg{.min_support = 0.05, .max_pattern_nodes = 3};
  const TreeMiningResult r = mine_subtrees(trees, cfg);
  ASSERT_FALSE(r.frequent.empty());
  std::map<TreePattern, std::uint32_t> m = as_map(r);
  for (const auto& f : r.frequent) {
    if (f.pattern.size() < 2) continue;
    // The prefix with the last node removed is also frequent, with
    // support at least as high.
    TreePattern prefix = f.pattern;
    prefix.nodes.pop_back();
    const auto it = m.find(prefix);
    ASSERT_NE(it, m.end()) << prefix.to_string();
    EXPECT_GE(it->second, f.support);
  }
}

TEST(TreeMiner, SupportsMatchContainsSubtree) {
  const auto trees = data::generate_trees(data::treebank_like(0.03));
  const TreeMinerConfig cfg{.min_support = 0.08, .max_pattern_nodes = 3};
  const TreeMiningResult r = mine_subtrees(trees, cfg);
  ASSERT_FALSE(r.frequent.empty());
  std::uint64_t ops = 0;
  for (const auto& f : r.frequent) {
    std::uint32_t count = 0;
    for (const auto& t : trees) {
      if (contains_subtree(t, f.pattern, ops)) ++count;
    }
    EXPECT_EQ(count, f.support) << f.pattern.to_string();
  }
}

TEST(TreeMiner, CountSubtreeSupportAgrees) {
  const auto trees = data::generate_trees(data::swissprot_like(0.03));
  const TreeMinerConfig cfg{.min_support = 0.1, .max_pattern_nodes = 2};
  const TreeMiningResult r = mine_subtrees(trees, cfg);
  std::vector<TreePattern> patterns;
  for (const auto& f : r.frequent) patterns.push_back(f.pattern);
  std::uint64_t ops = 0;
  const auto counts = count_subtree_support(trees, patterns, ops);
  ASSERT_EQ(counts.size(), patterns.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], r.frequent[i].support);
  }
  EXPECT_GT(ops, 0u);
}

TEST(TreeMiner, MaxNodesCapsPatternSize) {
  const auto trees = data::generate_trees(data::swissprot_like(0.03));
  const TreeMinerConfig cfg{.min_support = 0.05, .max_pattern_nodes = 2};
  for (const auto& f : mine_subtrees(trees, cfg).frequent) {
    EXPECT_LE(f.pattern.size(), 2u);
  }
}

TEST(TreeMiner, EmptyAndInvalidInputs) {
  EXPECT_TRUE(mine_subtrees({}, {}).frequent.empty());
  const TreeMinerConfig bad{.min_support = 0.0};
  std::vector<data::LabeledTree> corpus{make_tree({0}, {1})};
  EXPECT_THROW((void)mine_subtrees(corpus, bad), common::ConfigError);
  std::uint64_t ops = 0;
  EXPECT_THROW((void)contains_subtree(corpus[0], TreePattern{}, ops),
               common::ConfigError);
}

TEST(TreeMiner, DeterministicOutputOrder) {
  const auto trees = data::generate_trees(data::swissprot_like(0.03));
  const TreeMinerConfig cfg{.min_support = 0.08, .max_pattern_nodes = 3};
  const auto a = mine_subtrees(trees, cfg);
  const auto b = mine_subtrees(trees, cfg);
  ASSERT_EQ(a.frequent.size(), b.frequent.size());
  for (std::size_t i = 0; i < a.frequent.size(); ++i) {
    EXPECT_EQ(a.frequent[i].pattern, b.frequent[i].pattern);
    EXPECT_EQ(a.frequent[i].support, b.frequent[i].support);
  }
}

// ---- Eclat vs Apriori -------------------------------------------------------

TEST(Eclat, MatchesAprioriOnTextCorpus) {
  const data::Dataset ds = data::generate_text_corpus(data::rcv1_like(0.05));
  std::vector<data::ItemSet> txns;
  for (const auto& r : ds.records) txns.push_back(r.items);
  const AprioriConfig cfg{.min_support = 0.08, .max_pattern_length = 3};
  const MiningResult a = apriori(txns, cfg);
  const MiningResult e = eclat(txns, cfg);
  ASSERT_EQ(a.frequent.size(), e.frequent.size());
  for (std::size_t i = 0; i < a.frequent.size(); ++i) {
    EXPECT_EQ(a.frequent[i].items, e.frequent[i].items);
    EXPECT_EQ(a.frequent[i].support, e.frequent[i].support);
  }
}

TEST(Eclat, MatchesAprioriAcrossSupports) {
  common::Rng rng(91);
  std::vector<data::ItemSet> txns;
  for (int i = 0; i < 300; ++i) {
    data::ItemSet t;
    const std::size_t len = 2 + rng.bounded(8);
    for (std::size_t j = 0; j < len; ++j) {
      t.push_back(static_cast<data::Item>(rng.zipf(30, 1.1)));
    }
    data::normalize(t);
    txns.push_back(std::move(t));
  }
  for (const double support : {0.02, 0.05, 0.1, 0.3}) {
    const AprioriConfig cfg{.min_support = support, .max_pattern_length = 4};
    const MiningResult a = apriori(txns, cfg);
    const MiningResult e = eclat(txns, cfg);
    ASSERT_EQ(a.frequent.size(), e.frequent.size()) << "support " << support;
    for (std::size_t i = 0; i < a.frequent.size(); ++i) {
      EXPECT_EQ(a.frequent[i].items, e.frequent[i].items);
      EXPECT_EQ(a.frequent[i].support, e.frequent[i].support);
    }
  }
}

TEST(Eclat, EmptyInputAndCaps) {
  EXPECT_TRUE(eclat({}, {}).frequent.empty());
  std::vector<data::ItemSet> txns(10, data::ItemSet{1, 2, 3});
  const AprioriConfig cfg{.min_support = 1.0, .max_pattern_length = 2};
  for (const auto& p : eclat(txns, cfg).frequent) {
    EXPECT_LE(p.items.size(), 2u);
  }
}

// ---- FP-Growth vs the other miners ------------------------------------------

TEST(FpGrowth, MatchesAprioriOnTextCorpus) {
  const data::Dataset ds = data::generate_text_corpus(data::rcv1_like(0.05));
  std::vector<data::ItemSet> txns;
  for (const auto& r : ds.records) txns.push_back(r.items);
  const AprioriConfig cfg{.min_support = 0.08, .max_pattern_length = 3};
  const MiningResult a = apriori(txns, cfg);
  const MiningResult f = fpgrowth(txns, cfg);
  ASSERT_EQ(a.frequent.size(), f.frequent.size());
  for (std::size_t i = 0; i < a.frequent.size(); ++i) {
    EXPECT_EQ(a.frequent[i].items, f.frequent[i].items);
    EXPECT_EQ(a.frequent[i].support, f.frequent[i].support);
  }
}

TEST(FpGrowth, ThreeMinersAgreeOnRandomData) {
  common::Rng rng(123);
  std::vector<data::ItemSet> txns;
  for (int i = 0; i < 250; ++i) {
    data::ItemSet t;
    const std::size_t len = 2 + rng.bounded(7);
    for (std::size_t j = 0; j < len; ++j) {
      t.push_back(static_cast<data::Item>(rng.zipf(25, 1.0)));
    }
    data::normalize(t);
    txns.push_back(std::move(t));
  }
  for (const double support : {0.03, 0.08, 0.2}) {
    const AprioriConfig cfg{.min_support = support, .max_pattern_length = 4};
    const MiningResult a = apriori(txns, cfg);
    const MiningResult e = eclat(txns, cfg);
    const MiningResult f = fpgrowth(txns, cfg);
    ASSERT_EQ(a.frequent.size(), f.frequent.size()) << "support " << support;
    ASSERT_EQ(e.frequent.size(), f.frequent.size()) << "support " << support;
    for (std::size_t i = 0; i < a.frequent.size(); ++i) {
      EXPECT_EQ(a.frequent[i].items, f.frequent[i].items);
      EXPECT_EQ(a.frequent[i].support, f.frequent[i].support);
    }
  }
}

TEST(FpGrowth, TextbookExampleSupports) {
  // Same toy basket as the Apriori test; check a few supports directly.
  const std::vector<data::ItemSet> txns{
      {1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3}, {2, 3}, {1, 3},
      {1, 2, 3, 5}, {1, 2, 3},
  };
  const AprioriConfig cfg{.min_support = 2.0 / 9.0, .max_pattern_length = 3};
  const MiningResult f = fpgrowth(txns, cfg);
  std::map<data::ItemSet, std::uint32_t> m;
  for (const auto& p : f.frequent) m[p.items] = p.support;
  EXPECT_EQ(m.at({2}), 7u);
  EXPECT_EQ(m.at({1, 2}), 4u);
  EXPECT_EQ(m.at({1, 2, 5}), 2u);
  EXPECT_EQ(m.size(), 13u);
}

TEST(FpGrowth, EmptyInputAndCaps) {
  EXPECT_TRUE(fpgrowth({}, {}).frequent.empty());
  std::vector<data::ItemSet> txns(10, data::ItemSet{1, 2, 3});
  const AprioriConfig cfg{.min_support = 1.0, .max_pattern_length = 2};
  for (const auto& p : fpgrowth(txns, cfg).frequent) {
    EXPECT_LE(p.items.size(), 2u);
  }
  EXPECT_THROW((void)fpgrowth(txns, AprioriConfig{.min_support = 0.0}),
               common::ConfigError);
}

TEST(Eclat, MetersWork) {
  std::vector<data::ItemSet> txns(50, data::ItemSet{1, 2, 3, 4});
  const AprioriConfig cfg{.min_support = 0.5, .max_pattern_length = 4};
  const MiningResult r = eclat(txns, cfg);
  EXPECT_GT(r.work_ops, 0u);
  EXPECT_GT(r.candidates_generated, 0u);
}

}  // namespace
}  // namespace hetsim::mining

// Tests for the correctness-tooling layer (src/check/): contract macros
// and the ranked-mutex lock-order checker. The death tests prove the
// fail-fast paths actually abort with a diagnosable message — a contract
// that cannot fire is worse than no contract.
#include <gtest/gtest.h>

#include <mutex>  // std::lock_guard over RankedMutex
#include <thread>

#include "check/check.h"
#include "check/ranked_mutex.h"
#include "common/allocation.h"
#include "common/error.h"

namespace {

using hetsim::check::LockRank;
using hetsim::check::RankedMutex;

// ---- contract macros -------------------------------------------------------

TEST(Check, PassingContractsAreSilent) {
  HETSIM_CHECK(2 + 2 == 4);
  HETSIM_CHECK(true) << "never rendered";
  HETSIM_CHECK_EQ(3, 3);
  HETSIM_CHECK_NE(3, 4);
  HETSIM_CHECK_LT(3, 4);
  HETSIM_CHECK_LE(3, 3);
  HETSIM_CHECK_GT(4, 3);
  HETSIM_CHECK_GE(4, 4);
  HETSIM_INVARIANT(1 == 1);
  HETSIM_DCHECK(true);
  HETSIM_DCHECK_EQ(1, 1);
}

TEST(Check, StreamedContextIsLazy) {
  // The streamed expression must not be evaluated on the passing path.
  int evaluations = 0;
  const auto count_eval = [&evaluations] {
    ++evaluations;
    return "ctx";
  };
  HETSIM_CHECK(true) << count_eval();
  EXPECT_EQ(evaluations, 0);
}

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckPrintsExpressionLocationAndContext) {
  const int records = 7;
  EXPECT_DEATH(HETSIM_CHECK(records == 8) << " saw " << records,
               "HETSIM CHECK failed: records == 8 at .*check_test.cpp:"
               ".* saw 7");
}

TEST(CheckDeathTest, CheckEqPrintsBothOperands) {
  const int lhs = 3;
  const int rhs = 4;
  EXPECT_DEATH(HETSIM_CHECK_EQ(lhs, rhs),
               "CHECK failed: lhs == rhs at .*\\(with 3 vs 4\\)");
}

TEST(CheckDeathTest, InvariantIsTaggedAsInvariant) {
  EXPECT_DEATH(HETSIM_INVARIANT(false), "HETSIM INVARIANT failed: false");
}

#if HETSIM_DCHECK_ENABLED
TEST(CheckDeathTest, DcheckFiresWhenEnabled) {
  EXPECT_DEATH(HETSIM_DCHECK(1 == 2), "HETSIM DCHECK failed: 1 == 2");
  EXPECT_DEATH(HETSIM_DCHECK_GE(1, 2), "\\(with 1 vs 2\\)");
}
#else
TEST(Check, DcheckCompiledOutStillTypeChecksOperands) {
  int evaluations = 0;
  HETSIM_DCHECK([&] {
    ++evaluations;
    return false;
  }());
  EXPECT_EQ(evaluations, 0);
}
#endif

// ---- retrofitted contracts: proportional_allocation edge cases -------------

TEST(AllocationContract, TotalZeroGivesAllZeroShares) {
  const auto shares = hetsim::common::proportional_allocation({1.0, 2.0}, 0);
  EXPECT_EQ(shares, (std::vector<std::size_t>{0, 0}));
}

TEST(AllocationContract, AllZeroWeightsConserveTotal) {
  const auto shares =
      hetsim::common::proportional_allocation({0.0, 0.0, 0.0, 0.0}, 7);
  EXPECT_EQ(shares[0] + shares[1] + shares[2] + shares[3], 7u);
  // Remainder spreads from the front, one record at a time.
  EXPECT_EQ(shares, (std::vector<std::size_t>{2, 2, 2, 1}));
}

TEST(AllocationContract, AllNegativeWeightsFallBackToEqualSplit) {
  const auto shares =
      hetsim::common::proportional_allocation({-1.0, -2.0, -3.0}, 9);
  EXPECT_EQ(shares, (std::vector<std::size_t>{3, 3, 3}));
}

TEST(AllocationContract, MixedSignWeightsIgnoreNegatives) {
  const auto shares =
      hetsim::common::proportional_allocation({-10.0, 1.0, 3.0}, 8);
  EXPECT_EQ(shares[0], 0u);
  EXPECT_EQ(shares[1] + shares[2], 8u);
  EXPECT_EQ(shares[2], 6u);
}

TEST(AllocationContract, EmptyWeightsStillThrowConfigError) {
  EXPECT_THROW(hetsim::common::proportional_allocation({}, 5),
               hetsim::common::ConfigError);
}

// ---- ranked mutex ----------------------------------------------------------

TEST(RankedMutex, InOrderAcquisitionSucceeds) {
  RankedMutex sched(LockRank::kScheduler, "test-sched");
  RankedMutex trace(LockRank::kTrace, "test-trace");
  RankedMutex store(LockRank::kStore, "test-store");
  {
    std::lock_guard a(sched);
    std::lock_guard b(trace);
    std::lock_guard c(store);
    EXPECT_EQ(RankedMutex::held_by_this_thread(),
              HETSIM_DCHECK_ENABLED ? 3u : 0u);
  }
  EXPECT_EQ(RankedMutex::held_by_this_thread(), 0u);
  // Skipping ranks downward is fine — only inversions abort.
  std::lock_guard a(sched);
  std::lock_guard c(store);
}

TEST(RankedMutex, ReleaseAllowsReacquisitionAtLowerRank) {
  RankedMutex trace(LockRank::kTrace, "test-trace");
  RankedMutex sched(LockRank::kScheduler, "test-sched");
  { std::lock_guard hold(trace); }
  std::lock_guard ok(sched);  // trace was released: no held rank above
}

TEST(RankedMutex, TryLockRegistersAndReleases) {
  RankedMutex store(LockRank::kStore, "test-store");
  ASSERT_TRUE(store.try_lock());
  EXPECT_EQ(RankedMutex::held_by_this_thread(),
            HETSIM_DCHECK_ENABLED ? 1u : 0u);
  store.unlock();
  EXPECT_EQ(RankedMutex::held_by_this_thread(), 0u);
}

TEST(RankedMutex, IndependentThreadsHaveIndependentStacks) {
  RankedMutex store(LockRank::kStore, "test-store");
  std::lock_guard hold(store);
  // Another thread holds nothing, so it may take any rank — including a
  // lower one — without tripping this thread's stack.
  std::thread other([] {
    RankedMutex sched(LockRank::kScheduler, "other-sched");
    std::lock_guard ok(sched);
    EXPECT_EQ(RankedMutex::held_by_this_thread(),
              HETSIM_DCHECK_ENABLED ? 1u : 0u);
  });
  other.join();
}

#if HETSIM_DCHECK_ENABLED

using RankedMutexDeathTest = ::testing::Test;

TEST(RankedMutexDeathTest, RankInversionAborts) {
  RankedMutex store(LockRank::kStore, "inv-store");
  RankedMutex sched(LockRank::kScheduler, "inv-sched");
  std::lock_guard hold(store);
  // Deliberate inversion: kScheduler (100) while holding kStore (300).
  EXPECT_DEATH(sched.lock(),
               "HETSIM LOCK-ORDER failed: .*\"inv-sched\" \\(rank 100\\) "
               "while holding \"inv-store\" \\(rank 300\\)");
}

TEST(RankedMutexDeathTest, EqualRankNestingAborts) {
  RankedMutex a(LockRank::kStore, "store-a");
  RankedMutex b(LockRank::kStore, "store-b");
  std::lock_guard hold(a);
  EXPECT_DEATH(b.lock(), "LOCK-ORDER failed");
}

TEST(RankedMutexDeathTest, SelfRelockAborts) {
  RankedMutex a(LockRank::kTrace, "self");
  std::lock_guard hold(a);
  EXPECT_DEATH(a.lock(), "LOCK-ORDER failed");
}

TEST(RankedMutexDeathTest, TryLockCannotBypassTheHierarchy) {
  RankedMutex store(LockRank::kStore, "try-store");
  RankedMutex sched(LockRank::kScheduler, "try-sched");
  std::lock_guard hold(store);
  EXPECT_DEATH((void)sched.try_lock(), "LOCK-ORDER failed");
}

TEST(RankedMutexDeathTest, ForeignUnlockAborts) {
  RankedMutex a(LockRank::kTrace, "never-locked");
  EXPECT_DEATH(a.unlock(), "unlock of a mutex this thread does not hold");
}

#endif  // HETSIM_DCHECK_ENABLED

}  // namespace

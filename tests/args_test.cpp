// Tests for the command-line flag parser.
#include <gtest/gtest.h>

#include <sstream>

#include "common/args.h"
#include "common/error.h"

namespace hetsim::common {
namespace {

ArgParser make_parser() {
  ArgParser p("test", "a test parser");
  p.add_string("name", "a string", "default-name");
  p.add_double("ratio", "a double", 0.5);
  p.add_int("count", "an int", 7);
  p.add_flag("verbose", "a flag");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "test");
  std::ostringstream err;
  return p.parse(static_cast<int>(argv.size()), argv.data(), err);
}

TEST(Args, DefaultsApplyWhenUnset) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get_string("name"), "default-name");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.5);
  EXPECT_EQ(p.get_int("count"), 7);
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(Args, SpaceSeparatedValues) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--name", "abc", "--ratio", "1.25", "--count", "-3",
                        "--verbose"}));
  EXPECT_EQ(p.get_string("name"), "abc");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 1.25);
  EXPECT_EQ(p.get_int("count"), -3);
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(Args, EqualsSeparatedValues) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--name=xyz", "--ratio=0.125", "--count=42"}));
  EXPECT_EQ(p.get_string("name"), "xyz");
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 0.125);
  EXPECT_EQ(p.get_int("count"), 42);
}

TEST(Args, UnknownFlagFails) {
  ArgParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--nope", "1"}));
}

TEST(Args, HelpReturnsFalseAndPrintsUsage) {
  ArgParser p = make_parser();
  std::ostringstream err;
  const char* argv[] = {"test", "--help"};
  EXPECT_FALSE(p.parse(2, argv, err));
  EXPECT_NE(err.str().find("usage: test"), std::string::npos);
  EXPECT_NE(err.str().find("--ratio"), std::string::npos);
  EXPECT_NE(err.str().find("default: 0.5"), std::string::npos);
}

TEST(Args, TypeValidationAtParse) {
  ArgParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--count", "abc"}));
  ArgParser q = make_parser();
  EXPECT_FALSE(parse(q, {"--ratio", "1.2.3"}));
  ArgParser r = make_parser();
  EXPECT_FALSE(parse(r, {"--count"}));  // missing value
}

TEST(Args, FlagRejectsValue) {
  ArgParser p = make_parser();
  EXPECT_FALSE(parse(p, {"--verbose=yes"}));
}

TEST(Args, PositionalArgumentsRejected) {
  ArgParser p = make_parser();
  EXPECT_FALSE(parse(p, {"stray"}));
}

TEST(Args, WrongTypeAccessThrows) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_THROW((void)p.get_double("name"), ConfigError);
  EXPECT_THROW((void)p.get_string("unknown"), ConfigError);
  EXPECT_THROW((void)p.get_flag("count"), ConfigError);
}

TEST(Args, ReparseResetsState) {
  ArgParser p = make_parser();
  ASSERT_TRUE(parse(p, {"--name", "first"}));
  EXPECT_EQ(p.get_string("name"), "first");
  ASSERT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get_string("name"), "default-name");
}

}  // namespace
}  // namespace hetsim::common

// hetsim::chaos — determinism of the search, and the mutation-style
// self-test: the harness must FIND each seeded bug fixture
// (fault::TestHooks), shrink it to a <= 2-event reproducer, and the
// reproducer must replay to the same violation (and pass once the bug
// is gone).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "common/error.h"
#include "common/json.h"
#include "fault/fault.h"
#include "fault/test_hooks.h"

namespace {

using namespace hetsim;

chaos::SearchConfig quick_config(std::uint64_t seed = 1,
                                 std::uint64_t trials = 200) {
  chaos::SearchConfig config;
  config.seed = seed;
  config.trials = trials;
  config.out_dir = "";  // tests write repros explicitly where they want them
  return config;
}

// ---- grammar ---------------------------------------------------------------

TEST(ChaosGrammar, EventDrawsArePureFunctionsOfSeedAndTrial) {
  const chaos::Grammar g;
  for (std::uint64_t trial = 0; trial < 32; ++trial) {
    const auto a = chaos::generate_events(7, trial, g);
    const auto b = chaos::generate_events(7, trial, g);
    EXPECT_EQ(chaos::events_json(a), chaos::events_json(b));
    EXPECT_GE(a.size(), g.min_events);
    EXPECT_LE(a.size(), g.max_events);
  }
  // Different seeds explore different plans.
  EXPECT_NE(chaos::events_json(chaos::generate_events(7, 0, g)),
            chaos::events_json(chaos::generate_events(8, 0, g)));
}

TEST(ChaosGrammar, EventsStayInsideTheBudget) {
  const chaos::Grammar g;
  for (std::uint64_t trial = 0; trial < 64; ++trial) {
    for (const chaos::Event& e : chaos::generate_events(3, trial, g)) {
      EXPECT_LT(e.host, g.nodes);
      EXPECT_LE(e.p, g.max_prob);
      EXPECT_LE(e.factor, g.max_slowdown);
      if (e.kind == chaos::EventKind::kPartition) {
        EXPECT_NE(e.host, e.peer);
        EXPECT_LT(e.peer, g.nodes);
      }
      if (e.kind == chaos::EventKind::kStoreCrash) {
        EXPECT_GE(e.count, 1u);
      }
    }
  }
}

TEST(ChaosGrammar, EventJsonRoundTrips) {
  const chaos::Grammar g;
  const auto events = chaos::generate_events(11, 5, g);
  const std::string json = chaos::events_json(events);
  const auto parsed = chaos::events_from_json(common::parse_json(json));
  EXPECT_EQ(chaos::events_json(parsed), json);
}

TEST(ChaosGrammar, PlanSeedIgnoresTheEventList) {
  // A shrunk subset must replay the same injector streams: the plan
  // seed depends only on (seed, trial).
  const chaos::Grammar g;
  const auto events = chaos::generate_events(9, 3, g);
  const auto full = chaos::events_to_plan(9, 3, events);
  const auto empty = chaos::events_to_plan(9, 3, {});
  EXPECT_EQ(full.seed, empty.seed);
  EXPECT_NE(full.seed, chaos::events_to_plan(9, 4, events).seed);
}

TEST(ChaosGrammar, PlanMergeTakesTheUnionOfFaults) {
  chaos::Event a;
  a.kind = chaos::EventKind::kStoreError;
  a.host = 1;
  a.p = 0.05;
  chaos::Event b = a;
  b.p = 0.09;
  chaos::Event crash1;
  crash1.kind = chaos::EventKind::kStoreCrash;
  crash1.host = 1;
  crash1.count = 20;
  chaos::Event crash2 = crash1;
  crash2.count = 7;
  const auto plan = chaos::events_to_plan(1, 0, {a, b, crash1, crash2});
  EXPECT_DOUBLE_EQ(plan.stores.at(1).error_prob, 0.09);  // max survives
  EXPECT_EQ(plan.stores.at(1).crash_at_op, 7u);          // earliest crash
}

// ---- clean search ----------------------------------------------------------

TEST(ChaosSearch, CleanStackPassesAndTheTrialLogIsByteIdentical) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const chaos::SearchReport a = chaos::run_search(quick_config(seed));
    const chaos::SearchReport b = chaos::run_search(quick_config(seed));
    EXPECT_FALSE(a.violated) << a.violation.invariant << ": "
                             << a.violation.detail;
    EXPECT_EQ(a.trials_run, 200u);
    EXPECT_FALSE(a.trial_log.empty());
    EXPECT_EQ(a.trial_log, b.trial_log);
  }
}

// ---- repro round-trip ------------------------------------------------------

TEST(ChaosRepro, JsonRoundTripsAndEmbedsAValidFaultPlan) {
  chaos::ReproCase repro;
  repro.chaos_seed = 5;
  repro.trial = 17;
  repro.victim = chaos::Victim::kChurn;
  repro.invariant = "replica-conservation";
  repro.events = chaos::generate_events(5, 17, repro.grammar);
  const std::string json = chaos::repro_json(repro);
  const chaos::ReproCase back = chaos::repro_from_json_text(json);
  EXPECT_EQ(back.chaos_seed, repro.chaos_seed);
  EXPECT_EQ(back.trial, repro.trial);
  EXPECT_EQ(back.victim, repro.victim);
  EXPECT_EQ(back.invariant, repro.invariant);
  EXPECT_EQ(back.grammar.nodes, repro.grammar.nodes);
  EXPECT_EQ(chaos::events_json(back.events),
            chaos::events_json(repro.events));
  // The embedded plan is itself a parseable fault plan.
  const common::JsonValue doc = common::parse_json(json);
  ASSERT_NE(doc.find("plan"), nullptr);
  EXPECT_NO_THROW((void)fault::FaultPlan::from_json(*doc.find("plan")));
}

TEST(ChaosRepro, RejectsUnknownVictimAndMissingKeys) {
  EXPECT_THROW((void)chaos::repro_from_json_text("{}"),
               common::ConfigError);
  EXPECT_THROW(
      (void)chaos::repro_from_json_text(
          R"({"chaos_seed": 1, "trial": 0, "victim": "toaster",
              "invariant": "x", "events": []})"),
      common::ConfigError);
}

// ---- mutation self-test ----------------------------------------------------

struct Fixture {
  const char* name;
  fault::TestHooks hooks;
  chaos::Victim victim;
  const char* invariant;
};

std::vector<Fixture> fixtures() {
  std::vector<Fixture> out;
  {
    Fixture f{};
    f.name = "recovery_skip_first_replay";
    f.hooks.recovery_skip_first_replay = true;
    f.victim = chaos::Victim::kRecovery;
    f.invariant = "recovery-divergence";
    out.push_back(f);
  }
  {
    Fixture f{};
    f.name = "router_pin_dead_primary";
    f.hooks.router_pin_dead_primary = true;
    f.victim = chaos::Victim::kChurn;
    f.invariant = "routes-dead-node";
    out.push_back(f);
  }
  {
    Fixture f{};
    f.name = "fanout_skip_last_replica";
    f.hooks.fanout_skip_last_replica = true;
    f.victim = chaos::Victim::kChurn;
    f.invariant = "replica-conservation";
    out.push_back(f);
  }
  return out;
}

TEST(ChaosMutation, FindsAndShrinksEverySeededBugFixture) {
  for (const Fixture& fixture : fixtures()) {
    SCOPED_TRACE(fixture.name);
    fault::ScopedTestHooks guard(fixture.hooks);
    chaos::SearchConfig config = quick_config();
    config.out_dir = ::testing::TempDir();
    const chaos::SearchReport report = chaos::run_search(config);
    ASSERT_TRUE(report.violated) << "fixture not found in "
                                 << report.trials_run << " trials";
    EXPECT_EQ(report.violation.victim, fixture.victim);
    EXPECT_EQ(report.violation.invariant, fixture.invariant);
    // The whole point of shrinking: a minimal, committable reproducer.
    EXPECT_LE(report.shrunk.size(), 2u);
    ASSERT_FALSE(report.repro_path.empty());
    EXPECT_NE(report.replay_command.find("chaos --replay"),
              std::string::npos);

    // The written artifact replays to the same violation while the bug
    // is in...
    const chaos::Violation again = chaos::replay_file(report.repro_path);
    EXPECT_TRUE(again.violated);
    EXPECT_EQ(again.invariant, fixture.invariant);
    {
      // ...and passes once it is fixed (hooks off).
      fault::ScopedTestHooks fixed(fault::TestHooks{});
      const chaos::Violation healthy = chaos::replay_file(report.repro_path);
      EXPECT_FALSE(healthy.violated) << healthy.detail;
    }
    std::remove(report.repro_path.c_str());
  }
}

TEST(ChaosMutation, ShrinkingIsDeterministic) {
  fault::TestHooks hooks;
  hooks.router_pin_dead_primary = true;
  fault::ScopedTestHooks guard(hooks);
  const chaos::SearchConfig config = quick_config();
  const chaos::SearchReport report = chaos::run_search(config);
  ASSERT_TRUE(report.violated);
  // Re-deriving the shrink from the same trial yields the same minimum.
  const auto events = chaos::generate_events(
      config.seed, report.trials_run - 1, config.grammar);
  const auto a = chaos::shrink_events(events, report.violation,
                                      config.grammar, config.seed,
                                      report.trials_run - 1);
  const auto b = chaos::shrink_events(events, report.violation,
                                      config.grammar, config.seed,
                                      report.trials_run - 1);
  EXPECT_EQ(chaos::events_json(a), chaos::events_json(b));
  EXPECT_EQ(chaos::events_json(a), chaos::events_json(report.shrunk));
}

TEST(ChaosMutation, MutationRunsAreByteIdenticalToo) {
  fault::TestHooks hooks;
  hooks.fanout_skip_last_replica = true;
  fault::ScopedTestHooks guard(hooks);
  const chaos::SearchReport a = chaos::run_search(quick_config());
  const chaos::SearchReport b = chaos::run_search(quick_config());
  EXPECT_EQ(a.trial_log, b.trial_log);
  EXPECT_EQ(chaos::events_json(a.shrunk), chaos::events_json(b.shrunk));
}

}  // namespace

// Tests for the canonical Huffman coder and the DEFLATE-like pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "compress/huffman.h"
#include "compress/lz77.h"

namespace hetsim::compress {
namespace {

TEST(Huffman, RoundTripAssortedInputs) {
  common::Rng rng(77);
  std::vector<std::string> inputs{"", "a", "ab", "aaaaaaaaaa",
                                  "the quick brown fox"};
  std::string uniform;
  for (int i = 0; i < 4096; ++i) {
    uniform.push_back(static_cast<char>(rng.bounded(256)));
  }
  inputs.push_back(uniform);
  std::string skewed;
  for (int i = 0; i < 10000; ++i) {
    skewed.push_back(static_cast<char>('a' + rng.zipf(20, 1.5)));
  }
  inputs.push_back(skewed);
  for (const std::string& input : inputs) {
    const std::string packed = huffman_compress(input);
    EXPECT_EQ(huffman_decompress(packed), input) << "size " << input.size();
  }
}

TEST(Huffman, SkewedInputCompressesNearEntropy) {
  // Two symbols at 90/10: entropy ~0.47 bits/byte.
  common::Rng rng(5);
  std::string input;
  for (int i = 0; i < 20000; ++i) {
    input.push_back(rng.uniform() < 0.9 ? 'x' : 'y');
  }
  HuffmanStats stats;
  const std::string packed = huffman_compress(input, &stats);
  // 1 bit per symbol is the floor for a 2-symbol Huffman code.
  EXPECT_LE(stats.output_bits, 20000u + 64);
  EXPECT_EQ(huffman_decompress(packed), input);
}

TEST(Huffman, UniformBytesCostAboutEightBits) {
  common::Rng rng(9);
  std::string input;
  for (int i = 0; i < 8192; ++i) {
    input.push_back(static_cast<char>(rng.bounded(256)));
  }
  HuffmanStats stats;
  (void)huffman_compress(input, &stats);
  const double bits_per_byte =
      static_cast<double>(stats.output_bits) / input.size();
  EXPECT_GT(bits_per_byte, 7.5);
  EXPECT_LT(bits_per_byte, 8.5);
}

TEST(Huffman, CodeLengthsSatisfyKraft) {
  common::Rng rng(13);
  std::string input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<char>('a' + rng.zipf(30, 1.2)));
  }
  HuffmanStats stats;
  (void)huffman_compress(input, &stats);
  double kraft = 0.0;
  for (const std::uint32_t len : stats.code_lengths) {
    if (len > 0) kraft += std::pow(2.0, -static_cast<double>(len));
  }
  EXPECT_LE(kraft, 1.0 + 1e-12);
  EXPECT_GT(kraft, 0.99);  // full binary tree uses the whole budget
}

TEST(Huffman, SingleSymbolInput) {
  const std::string input(1000, 'z');
  HuffmanStats stats;
  const std::string packed = huffman_compress(input, &stats);
  EXPECT_EQ(stats.code_lengths['z'], 1u);
  EXPECT_EQ(huffman_decompress(packed), input);
  // ~1 bit/symbol plus the fixed 260-byte header.
  EXPECT_LT(packed.size(), 4 + 256 + 1000 / 8 + 2);
}

TEST(Huffman, TruncatedInputThrows) {
  const std::string packed = huffman_compress("hello world");
  EXPECT_THROW((void)huffman_decompress(packed.substr(0, 100)),
               common::StoreError);
  EXPECT_THROW((void)huffman_decompress("xy"), common::StoreError);
}

TEST(Huffman, CorruptLengthsRejected) {
  std::string packed = huffman_compress("hello hello hello");
  packed[4 + 'h'] = 60;  // invalid code length > 32
  EXPECT_THROW((void)huffman_decompress(packed), common::StoreError);
}

TEST(Deflate, RoundTripOnStructuredPayload) {
  // Large semi-structured payload: enough residual literal redundancy
  // for the entropy stage to beat raw LZ77 despite its 260-byte header.
  common::Rng rng(3);
  std::string input;
  for (int i = 0; i < 8000; ++i) {
    input += "rec|";
    for (int k = 0; k < 6; ++k) {
      input.push_back(static_cast<char>('a' + rng.zipf(16, 1.3)));
    }
  }
  std::uint64_t ops = 0;
  const std::string packed = deflate_compress(input, &ops);
  EXPECT_EQ(deflate_decompress(packed), input);
  EXPECT_GT(ops, 0u);
  const std::string lz_only = lz77_compress(input);
  EXPECT_LT(packed.size(), lz_only.size());
}

TEST(Deflate, RandomDataRoundTrips) {
  common::Rng rng(21);
  std::string input;
  for (int i = 0; i < 30000; ++i) {
    input.push_back(static_cast<char>(rng.bounded(256)));
  }
  EXPECT_EQ(deflate_decompress(deflate_compress(input)), input);
}

TEST(Deflate, EmptyInput) {
  EXPECT_EQ(deflate_decompress(deflate_compress("")), "");
}

}  // namespace
}  // namespace hetsim::compress

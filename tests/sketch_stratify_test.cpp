// Tests for minhash sketching and compositeKModes stratification,
// including the statistical property the whole pipeline rests on:
// sketch match fraction estimates Jaccard similarity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "data/generators.h"
#include "sketch/minhash.h"
#include "stratify/kmodes.h"
#include "stratify/sampler.h"

namespace hetsim {
namespace {

using data::ItemSet;
using sketch::MinHasher;
using sketch::Sketch;
using sketch::SketchConfig;

TEST(MinHash, DeterministicForSeed) {
  const MinHasher a(SketchConfig{.num_hashes = 16, .seed = 5});
  const MinHasher b(SketchConfig{.num_hashes = 16, .seed = 5});
  const ItemSet s{1, 2, 3, 100};
  EXPECT_EQ(a.sketch(s), b.sketch(s));
}

TEST(MinHash, DifferentSeedsGiveDifferentPermutations) {
  const MinHasher a(SketchConfig{.num_hashes = 16, .seed = 5});
  const MinHasher b(SketchConfig{.num_hashes = 16, .seed = 6});
  const ItemSet s{1, 2, 3, 100};
  EXPECT_NE(a.sketch(s), b.sketch(s));
}

TEST(MinHash, IdenticalSetsMatchPerfectly) {
  const MinHasher h(SketchConfig{.num_hashes = 32});
  const ItemSet s{4, 8, 15, 16, 23, 42};
  EXPECT_DOUBLE_EQ(MinHasher::estimate_jaccard(h.sketch(s), h.sketch(s)), 1.0);
}

TEST(MinHash, EmptySetsSketchToSentinel) {
  const MinHasher h(SketchConfig{.num_hashes = 8});
  const Sketch s = h.sketch(ItemSet{});
  for (const auto v : s) EXPECT_EQ(v, MinHasher::kEmptySentinel);
  EXPECT_DOUBLE_EQ(MinHasher::estimate_jaccard(s, h.sketch(ItemSet{})), 1.0);
}

TEST(MinHash, SketchIsOrderOfMagnitudeSmaller) {
  ItemSet big;
  for (std::uint32_t i = 0; i < 10000; ++i) big.push_back(i * 7);
  const MinHasher h(SketchConfig{.num_hashes = 64});
  EXPECT_EQ(h.sketch(big).size(), 64u);
}

/// Property: E[match fraction] = Jaccard. Checked across controlled
/// overlap levels with tolerance ~3 standard errors.
TEST(MinHash, EstimatesJaccardUnbiased) {
  constexpr std::uint32_t kHashes = 256;
  const MinHasher h(SketchConfig{.num_hashes = kHashes, .seed = 11});
  for (const double target : {0.1, 0.3, 0.5, 0.8}) {
    // Build sets with |a∩b|/|a∪b| == target: union size 1000.
    const std::size_t inter = static_cast<std::size_t>(1000 * target);
    const std::size_t only = (1000 - inter) / 2;
    ItemSet a, b;
    std::uint32_t next = 0;
    for (std::size_t i = 0; i < inter; ++i) {
      a.push_back(next);
      b.push_back(next);
      ++next;
    }
    for (std::size_t i = 0; i < only; ++i) a.push_back(next++);
    for (std::size_t i = 0; i < only; ++i) b.push_back(next++);
    const double truth = data::jaccard(a, b);
    const double est = MinHasher::estimate_jaccard(h.sketch(a), h.sketch(b));
    const double stderr3 = 3.0 * std::sqrt(truth * (1 - truth) / kHashes);
    EXPECT_NEAR(est, truth, stderr3 + 0.02) << "target " << target;
  }
}

TEST(MinHash, MoreHashesReduceError) {
  common::Rng rng(3);
  ItemSet a, b;
  for (std::uint32_t i = 0; i < 400; ++i) {
    a.push_back(i);
    b.push_back(i + 200);  // Jaccard = 200/600
  }
  const double truth = data::jaccard(a, b);
  double err_small = 0, err_large = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const MinHasher hs(SketchConfig{.num_hashes = 16, .seed = seed});
    const MinHasher hl(SketchConfig{.num_hashes = 256, .seed = seed});
    err_small += std::abs(
        MinHasher::estimate_jaccard(hs.sketch(a), hs.sketch(b)) - truth);
    err_large += std::abs(
        MinHasher::estimate_jaccard(hl.sketch(a), hl.sketch(b)) - truth);
  }
  EXPECT_LT(err_large, err_small);
}

TEST(MinHash, PermuteStaysBelowPrime) {
  const MinHasher h(SketchConfig{.num_hashes = 4, .seed = 9});
  constexpr std::uint64_t kPrime = (1ULL << 61) - 1;
  for (std::uint32_t j = 0; j < 4; ++j) {
    for (std::uint32_t x = 0; x < 1000; x += 13) {
      EXPECT_LT(h.permute(j, x), kPrime);
    }
  }
}

TEST(MinHash, SingletonSketchEqualsPermute) {
  // sketch({x})[j] is the min over one element, i.e. exactly permute(j, x)
  // — pins the sketch kernel to the shared permutation helper, so the
  // unrolled batch path can never drift from the reference arithmetic.
  const MinHasher h(SketchConfig{.num_hashes = 24, .seed = 13});
  for (const data::Item x : {0U, 1U, 97U, 50021U}) {
    const Sketch s = h.sketch(std::vector<data::Item>{x});
    ASSERT_EQ(s.size(), 24U);
    for (std::uint32_t j = 0; j < 24; ++j) {
      EXPECT_EQ(s[j], h.permute(j, x)) << "item " << x << " hash " << j;
    }
  }
}

TEST(MinHash, UnrolledTailMatchesAllLengths) {
  // Exercise every remainder of the 4-wide unroll (lengths 1..9): each
  // sketch component must equal the plain min over permute().
  const MinHasher h(SketchConfig{.num_hashes = 8, .seed = 29});
  ItemSet items;
  for (std::uint32_t len = 1; len <= 9; ++len) {
    items.push_back(len * 131);
    const Sketch s = h.sketch(items);
    for (std::uint32_t j = 0; j < 8; ++j) {
      std::uint64_t want = MinHasher::kEmptySentinel;
      for (const data::Item x : items) want = std::min(want, h.permute(j, x));
      EXPECT_EQ(s[j], want) << "len " << len << " hash " << j;
    }
  }
}

TEST(MinHash, RejectsMismatchedSketches) {
  const MinHasher h(SketchConfig{.num_hashes = 4});
  const MinHasher h8(SketchConfig{.num_hashes = 8});
  const ItemSet one{1};
  EXPECT_THROW((void)MinHasher::estimate_jaccard(h.sketch(one), h8.sketch(one)),
               common::ConfigError);
}

// ---- stratification -------------------------------------------------------

/// Build sketches from a corpus with clear latent topics.
std::vector<Sketch> topical_sketches(std::size_t docs, std::uint32_t topics,
                                     std::vector<std::uint32_t>* truth) {
  data::TextCorpusConfig cfg;
  cfg.num_docs = docs;
  cfg.num_topics = topics;
  cfg.topic_word_prob = 0.95;  // crisp topics
  cfg.topic_skew = 0.0;
  cfg.seed = 21;
  const data::Dataset ds = data::generate_text_corpus(cfg);
  if (truth) {
    // Recover the dominant topic range per document as ground truth.
    const std::uint32_t background = cfg.vocab_size / 4;
    const std::uint32_t per_topic = (cfg.vocab_size - background) / topics;
    truth->clear();
    for (const auto& r : ds.records) {
      std::map<std::uint32_t, int> votes;
      for (const auto item : r.items) {
        if (item >= background) ++votes[(item - background) / per_topic];
      }
      std::uint32_t best = 0;
      int best_votes = -1;
      for (const auto& [topic, v] : votes) {
        if (v > best_votes) {
          best_votes = v;
          best = topic;
        }
      }
      truth->push_back(best);
    }
  }
  const MinHasher h(SketchConfig{.num_hashes = 48, .seed = 31});
  return h.sketch_all(ds.records);
}

TEST(KModes, AssignsEveryPoint) {
  const auto sketches = topical_sketches(300, 4, nullptr);
  stratify::KModesConfig cfg;
  cfg.num_strata = 8;
  const auto strat = stratify::composite_kmodes(sketches, cfg);
  EXPECT_EQ(strat.assignment.size(), 300u);
  EXPECT_EQ(strat.num_strata, 8u);
  std::size_t total = 0;
  for (const auto s : strat.stratum_sizes) total += s;
  EXPECT_EQ(total, 300u);
  for (const auto a : strat.assignment) EXPECT_LT(a, 8u);
}

TEST(KModes, DeterministicForSeed) {
  const auto sketches = topical_sketches(200, 4, nullptr);
  stratify::KModesConfig cfg;
  cfg.num_strata = 6;
  const auto a = stratify::composite_kmodes(sketches, cfg);
  const auto b = stratify::composite_kmodes(sketches, cfg);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KModes, RecoversLatentTopics) {
  std::vector<std::uint32_t> truth;
  const auto sketches = topical_sketches(400, 4, &truth);
  stratify::KModesConfig cfg;
  cfg.num_strata = 4;
  cfg.composite_l = 4;
  cfg.max_iterations = 30;
  const auto strat = stratify::composite_kmodes(sketches, cfg);
  // Purity: majority true topic per stratum should dominate.
  std::size_t correct = 0;
  for (std::uint32_t c = 0; c < strat.num_strata; ++c) {
    std::map<std::uint32_t, std::size_t> votes;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (strat.assignment[i] == c) ++votes[truth[i]];
    }
    std::size_t best = 0;
    for (const auto& [topic, v] : votes) best = std::max(best, v);
    correct += best;
  }
  const double purity = static_cast<double>(correct) / truth.size();
  EXPECT_GT(purity, 0.7);
}

TEST(KModes, CompositeLReducesZeroMatches) {
  const auto sketches = topical_sketches(400, 8, nullptr);
  stratify::KModesConfig l1;
  l1.num_strata = 8;
  l1.composite_l = 1;
  stratify::KModesConfig l4 = l1;
  l4.composite_l = 4;
  const auto strat1 = stratify::composite_kmodes(sketches, l1);
  const auto strat4 = stratify::composite_kmodes(sketches, l4);
  EXPECT_LE(strat4.zero_match_assignments, strat1.zero_match_assignments);
}

TEST(KModes, FewerPointsThanStrataShrinksK) {
  const auto sketches = topical_sketches(3, 2, nullptr);
  stratify::KModesConfig cfg;
  cfg.num_strata = 10;
  const auto strat = stratify::composite_kmodes(sketches, cfg);
  EXPECT_EQ(strat.num_strata, 3u);
}

TEST(KModes, TieBreakKeepsLowestCenterIndex) {
  // With all-identical sketches every center is seeded from the same
  // point, so every point ties on every center with a full score. The
  // documented tie-break contract (kmodes.h) — strict `score > best`
  // over ascending center ids — must collapse the assignment to center
  // 0. A parallel assignment step that scanned centers in any other
  // order (or used >=) would silently scatter the points.
  const std::vector<Sketch> sketches(6, Sketch{11, 22, 33});
  stratify::KModesConfig cfg;
  cfg.num_strata = 3;
  const auto strat = stratify::composite_kmodes(sketches, cfg);
  ASSERT_EQ(strat.num_strata, 3u);
  for (const auto a : strat.assignment) EXPECT_EQ(a, 0u);
  EXPECT_EQ(strat.stratum_sizes[0], 6u);
  // Full score: every attribute of every point matched center 0.
  EXPECT_EQ(strat.objective, 6u * 3u);
  EXPECT_EQ(strat.zero_match_assignments, 0u);
}

TEST(KModes, TieBreakStableAcrossThreadCounts) {
  const std::vector<Sketch> sketches(64, Sketch{7, 7, 7, 7});
  for (const std::uint32_t threads : {1u, 4u}) {
    par::ThreadPool pool(threads);
    stratify::KModesConfig cfg;
    cfg.num_strata = 4;
    cfg.par = {.pool = &pool, .chunk = 5};
    const auto strat = stratify::composite_kmodes(sketches, cfg);
    for (const auto a : strat.assignment) {
      EXPECT_EQ(a, 0u) << "threads " << threads;
    }
  }
}

TEST(KModes, RejectsRaggedInput) {
  std::vector<Sketch> bad{{1, 2}, {1}};
  EXPECT_THROW((void)stratify::composite_kmodes(bad, {}), common::ConfigError);
}

// ---- stratified sampling ---------------------------------------------------

stratify::Stratification fake_strat(std::vector<std::uint32_t> assignment,
                                    std::uint32_t k) {
  stratify::Stratification s;
  s.assignment = std::move(assignment);
  s.num_strata = k;
  s.stratum_sizes.assign(k, 0);
  for (const auto a : s.assignment) ++s.stratum_sizes[a];
  return s;
}

TEST(Sampler, ProportionalAllocationAcrossStrata) {
  // 60 in stratum 0, 30 in stratum 1, 10 in stratum 2.
  std::vector<std::uint32_t> assignment;
  for (int i = 0; i < 60; ++i) assignment.push_back(0);
  for (int i = 0; i < 30; ++i) assignment.push_back(1);
  for (int i = 0; i < 10; ++i) assignment.push_back(2);
  const auto strat = fake_strat(std::move(assignment), 3);
  common::Rng rng(17);
  const auto sample = stratify::stratified_sample(strat, 20, rng);
  EXPECT_EQ(sample.size(), 20u);
  std::vector<int> by_stratum(3, 0);
  for (const auto i : sample) ++by_stratum[strat.assignment[i]];
  EXPECT_EQ(by_stratum[0], 12);
  EXPECT_EQ(by_stratum[1], 6);
  EXPECT_EQ(by_stratum[2], 2);
}

TEST(Sampler, SampleHasNoDuplicates) {
  const auto strat = fake_strat(std::vector<std::uint32_t>(100, 0), 1);
  common::Rng rng(19);
  const auto sample = stratify::stratified_sample(strat, 50, rng);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Sampler, OversizedRequestClampsToPopulation) {
  const auto strat = fake_strat({0, 0, 1}, 2);
  common::Rng rng(23);
  EXPECT_EQ(stratify::stratified_sample(strat, 100, rng).size(), 3u);
}

TEST(Sampler, StrataOrderGroupsByStratum) {
  const auto strat = fake_strat({1, 0, 1, 0, 2}, 3);
  const auto order = stratify::strata_order(strat);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 3, 0, 2, 4}));
}

TEST(Sampler, StrataMembersPartitionTheIndexSpace) {
  const auto strat = fake_strat({2, 0, 1, 2, 1, 0}, 3);
  const auto members = stratify::strata_members(strat);
  EXPECT_EQ(members[0], (std::vector<std::uint32_t>{1, 5}));
  EXPECT_EQ(members[1], (std::vector<std::uint32_t>{2, 4}));
  EXPECT_EQ(members[2], (std::vector<std::uint32_t>{0, 3}));
}

}  // namespace
}  // namespace hetsim

// Tests for the network fabric cost model and the virtual-time cluster.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "cluster/node.h"
#include "common/error.h"
#include "net/fabric.h"

namespace hetsim {
namespace {

TEST(Fabric, ExchangeCostIncludesLatencyBothWays) {
  net::Fabric f(2, net::LinkSpec{.latency_s = 1e-3, .bandwidth_bps = 1e9});
  const double cost = f.exchange_cost(0, 1, 1000, 1000);
  EXPECT_NEAR(cost, 2e-3 + 2000.0 / 1e9, 1e-12);
}

TEST(Fabric, LoopbackIsCheaper) {
  net::Fabric f(2);
  EXPECT_LT(f.exchange_cost(0, 0, 100, 100), f.exchange_cost(0, 1, 100, 100));
}

TEST(Fabric, PipelinedBatchPaysOneLatency) {
  net::Fabric f(2, net::LinkSpec{.latency_s = 1e-3, .bandwidth_bps = 1e9});
  std::vector<std::size_t> payloads(10, 100);
  const double batch = f.pipelined_cost(0, 1, payloads);
  EXPECT_NEAR(batch, 2e-3 + 1000.0 / 1e9, 1e-12);
  double individual = 0;
  for (int i = 0; i < 10; ++i) individual += f.exchange_cost(0, 1, 100, 0);
  EXPECT_LT(batch, individual / 5.0);
}

TEST(Fabric, EmptyBatchIsFree) {
  net::Fabric f(2);
  EXPECT_EQ(f.pipelined_cost(0, 1, {}), 0.0);
}

TEST(Fabric, StatsAccumulateAndReset) {
  net::Fabric f(3);
  f.record(0, 1, 5, 1, 500);
  f.record(0, 1, 2, 2, 100);
  f.record(1, 2, 1, 1, 50);
  EXPECT_EQ(f.stats(0, 1).messages, 7u);
  EXPECT_EQ(f.stats(0, 1).bytes, 600u);
  EXPECT_EQ(f.total_stats().bytes, 650u);
  f.reset_stats();
  EXPECT_EQ(f.total_stats().messages, 0u);
}

TEST(Fabric, RejectsBadHosts) {
  net::Fabric f(2);
  EXPECT_THROW((void)f.exchange_cost(0, 5, 1, 1), common::ConfigError);
  EXPECT_THROW(net::Fabric(0), common::ConfigError);
}

TEST(Node, StandardNodePowerModel) {
  using cluster::NodeType;
  const auto t1 = cluster::standard_node(0, NodeType::kType1, 0);
  EXPECT_DOUBLE_EQ(t1.speed, 4.0);
  EXPECT_DOUBLE_EQ(t1.power_watts, 440.0);  // 60 + 4*95
  const auto t4 = cluster::standard_node(1, NodeType::kType4, 3);
  EXPECT_DOUBLE_EQ(t4.speed, 1.0);
  EXPECT_DOUBLE_EQ(t4.power_watts, 155.0);  // 60 + 1*95
}

TEST(Node, StandardClusterCyclesTypes) {
  const auto nodes = cluster::standard_cluster(8);
  ASSERT_EQ(nodes.size(), 8u);
  EXPECT_EQ(nodes[0].type, cluster::NodeType::kType1);
  EXPECT_EQ(nodes[3].type, cluster::NodeType::kType4);
  EXPECT_EQ(nodes[4].type, cluster::NodeType::kType1);
  EXPECT_EQ(nodes[5].location, 1u);
}

TEST(Node, MastersPreferFastNodes) {
  const auto nodes = cluster::standard_cluster(8);
  const auto masters = cluster::choose_masters(nodes, 2);
  ASSERT_EQ(masters.size(), 2u);
  EXPECT_EQ(nodes[masters[0]].type, cluster::NodeType::kType1);
  EXPECT_EQ(nodes[masters[1]].type, cluster::NodeType::kType1);
  EXPECT_NE(masters[0], masters[1]);
}

TEST(Node, ChooseMastersRejectsOverask) {
  const auto nodes = cluster::standard_cluster(2);
  EXPECT_THROW((void)cluster::choose_masters(nodes, 3), common::ConfigError);
}

class ClusterTest : public ::testing::Test {
 protected:
  cluster::Cluster make(std::uint32_t n = 4) {
    return cluster::Cluster(cluster::standard_cluster(n));
  }
};

TEST_F(ClusterTest, SpeedDividesVirtualTime) {
  auto c = make(4);  // speeds 4,3,2,1
  std::vector<cluster::NodeTask> tasks(4);
  for (int i = 0; i < 4; ++i) {
    tasks[i] = [](cluster::NodeContext& ctx) { ctx.meter().add(1e6); };
  }
  const auto report = c.run_phase("equal-work", tasks);
  // Same work, different speeds: node 3 (speed 1) is 4x slower than node 0.
  EXPECT_NEAR(report.per_node[3].compute_time_s /
                  report.per_node[0].compute_time_s,
              4.0, 1e-9);
  EXPECT_NEAR(report.makespan_s(), report.per_node[3].total_time_s(), 1e-12);
}

TEST_F(ClusterTest, ClockAdvancesByMakespan) {
  auto c = make(2);
  std::vector<cluster::NodeTask> tasks(2);
  tasks[0] = [](cluster::NodeContext& ctx) { ctx.meter().add(4e6); };
  tasks[1] = [](cluster::NodeContext& ctx) { ctx.meter().add(3e6); };
  EXPECT_EQ(c.now(), 0.0);
  const auto r1 = c.run_phase("p1", tasks);
  EXPECT_NEAR(c.now(), r1.makespan_s(), 1e-12);
  const auto r2 = c.run_phase("p2", tasks);
  EXPECT_NEAR(c.now(), r1.makespan_s() + r2.makespan_s(), 1e-12);
  EXPECT_EQ(c.history().size(), 2u);
}

TEST_F(ClusterTest, NetworkTimeChargedToPhase) {
  auto c = make(2);
  std::vector<cluster::NodeTask> tasks(2);
  tasks[0] = [](cluster::NodeContext& ctx) {
    ctx.client(1).set("remote-key", std::string(1000, 'x'));
  };
  const auto report = c.run_phase("net", tasks);
  EXPECT_GT(report.per_node[0].network_time_s, 0.0);
  EXPECT_EQ(report.per_node[1].network_time_s, 0.0);
  // The write landed on node 1's store.
  EXPECT_TRUE(c.store(1).exists("remote-key"));
}

TEST_F(ClusterTest, RunOnExecutesSingleNode) {
  auto c = make(4);
  const auto report = c.run_on("solo", 2, [](cluster::NodeContext& ctx) {
    ctx.meter().add(100.0);
  });
  EXPECT_GT(report.per_node[2].work_units, 0.0);
  EXPECT_EQ(report.per_node[0].work_units, 0.0);
}

TEST_F(ClusterTest, EnergyScalesWithPower) {
  auto c = make(4);
  // Node 0 is type 1 (440 W), node 3 is type 4 (155 W).
  EXPECT_DOUBLE_EQ(c.energy_joules(0, 10.0), 4400.0);
  EXPECT_DOUBLE_EQ(c.energy_joules(3, 10.0), 1550.0);
}

TEST_F(ClusterTest, RejectsWrongTaskArity) {
  auto c = make(2);
  std::vector<cluster::NodeTask> tasks(1);
  EXPECT_THROW((void)c.run_phase("bad", tasks), common::ConfigError);
}

TEST_F(ClusterTest, RejectsNonDenseIds) {
  auto nodes = cluster::standard_cluster(2);
  nodes[1].id = 5;
  EXPECT_THROW(cluster::Cluster{nodes}, common::ConfigError);
}

TEST_F(ClusterTest, JitterPerturbsPhaseTimes) {
  cluster::ClusterOptions opts;
  opts.speed_jitter = 0.3;
  cluster::Cluster c(cluster::standard_cluster(2), opts);
  std::vector<cluster::NodeTask> tasks(2);
  for (auto& t : tasks) {
    t = [](cluster::NodeContext& ctx) { ctx.meter().add(1e6); };
  }
  const auto r1 = c.run_phase("a", tasks);
  const auto r2 = c.run_phase("b", tasks);
  // Same work, same node, different phases: jitter makes times differ.
  EXPECT_NE(r1.per_node[0].compute_time_s, r2.per_node[0].compute_time_s);
}

TEST_F(ClusterTest, JitterIsDeterministicPerSeed) {
  cluster::ClusterOptions opts;
  opts.speed_jitter = 0.3;
  opts.jitter_seed = 777;
  cluster::Cluster a(cluster::standard_cluster(2), opts);
  cluster::Cluster b(cluster::standard_cluster(2), opts);
  std::vector<cluster::NodeTask> tasks(2);
  for (auto& t : tasks) {
    t = [](cluster::NodeContext& ctx) { ctx.meter().add(1e6); };
  }
  EXPECT_DOUBLE_EQ(a.run_phase("p", tasks).makespan_s(),
                   b.run_phase("p", tasks).makespan_s());
}

TEST_F(ClusterTest, ZeroJitterIsExact) {
  cluster::Cluster c(cluster::standard_cluster(1));
  const auto r = c.run_on("p", 0, [](cluster::NodeContext& ctx) {
    ctx.meter().add(4e6);
  });
  EXPECT_DOUBLE_EQ(r.per_node[0].compute_time_s, 1.0);  // 4 Mu / (1e6 * 4)
}

TEST_F(ClusterTest, RejectsInvalidJitter) {
  cluster::ClusterOptions opts;
  opts.speed_jitter = 1.5;
  EXPECT_THROW(cluster::Cluster(cluster::standard_cluster(1), opts),
               common::ConfigError);
}

TEST(WorkRate, ConvertsUnitsToSeconds) {
  const cluster::WorkRate rate{.base_rate = 1e6};
  EXPECT_DOUBLE_EQ(rate.seconds(2e6, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(rate.seconds(2e6, 4.0), 0.5);
}

}  // namespace
}  // namespace hetsim

// Tests for the RESP wire codec: value round trips, command/reply
// mapping, exact wire-size accounting, and malformed-input rejection.
#include <gtest/gtest.h>

#include "common/error.h"
#include "kvstore/resp.h"

namespace hetsim::kvstore::resp {
namespace {

TEST(RespValue, SimpleStringRoundTrip) {
  const Value v = Value::simple("OK");
  EXPECT_EQ(encode(v), "+OK\r\n");
  EXPECT_EQ(decode_all("+OK\r\n"), v);
}

TEST(RespValue, ErrorRoundTrip) {
  const Value v = Value::error("ERR unknown");
  EXPECT_EQ(encode(v), "-ERR unknown\r\n");
  EXPECT_EQ(decode_all(encode(v)), v);
}

TEST(RespValue, IntegerRoundTrip) {
  for (const std::int64_t i : {0LL, 1LL, -1LL, 123456789LL, -987654321LL}) {
    const Value v = Value::integer_value(i);
    EXPECT_EQ(decode_all(encode(v)), v) << i;
  }
  EXPECT_EQ(encode(Value::integer_value(42)), ":42\r\n");
}

TEST(RespValue, BulkStringRoundTrip) {
  EXPECT_EQ(encode(Value::bulk("hello")), "$5\r\nhello\r\n");
  EXPECT_EQ(decode_all("$5\r\nhello\r\n"), Value::bulk("hello"));
  // Empty and binary-safe payloads.
  EXPECT_EQ(decode_all(encode(Value::bulk(""))), Value::bulk(""));
  const std::string binary("\x00\r\n\xff", 4);
  EXPECT_EQ(decode_all(encode(Value::bulk(binary))), Value::bulk(binary));
}

TEST(RespValue, NullEncodesAsMinusOne) {
  EXPECT_EQ(encode(Value::null()), "$-1\r\n");
  EXPECT_EQ(decode_all("$-1\r\n").type, ValueType::kNull);
}

TEST(RespValue, NestedArrayRoundTrip) {
  const Value v = Value::array_value(
      {Value::bulk("a"), Value::integer_value(7),
       Value::array_value({Value::bulk("nested"), Value::null()})});
  EXPECT_EQ(decode_all(encode(v)), v);
}

TEST(RespValue, EmptyArray) {
  EXPECT_EQ(encode(Value::array_value({})), "*0\r\n");
  const Value v = decode_all("*0\r\n");
  EXPECT_EQ(v.type, ValueType::kArray);
  EXPECT_TRUE(v.array.empty());
}

TEST(RespValue, MalformedInputsThrow) {
  EXPECT_THROW((void)decode_all(""), common::StoreError);
  EXPECT_THROW((void)decode_all("?\r\n"), common::StoreError);
  EXPECT_THROW((void)decode_all(":\r\n"), common::StoreError);
  EXPECT_THROW((void)decode_all(":12x\r\n"), common::StoreError);
  EXPECT_THROW((void)decode_all("+OK"), common::StoreError);        // no CRLF
  EXPECT_THROW((void)decode_all("$5\r\nhel\r\n"), common::StoreError);
  EXPECT_THROW((void)decode_all("$5\r\nhelloXY"), common::StoreError);
  EXPECT_THROW((void)decode_all("*2\r\n+a\r\n"), common::StoreError);
  EXPECT_THROW((void)decode_all("+OK\r\n+EXTRA\r\n"), common::StoreError);
}

TEST(RespCommand, SetEncodesAsRedisWould) {
  const Command cmd{.type = CommandType::kSet, .key = "k", .value = "v"};
  EXPECT_EQ(encode_command(cmd),
            "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n");
}

TEST(RespCommand, AllTypesRoundTrip) {
  const std::vector<Command> commands{
      {.type = CommandType::kSet, .key = "key", .value = "value"},
      {.type = CommandType::kGet, .key = "key"},
      {.type = CommandType::kDel, .key = "key"},
      {.type = CommandType::kExists, .key = "key"},
      {.type = CommandType::kRPush, .key = "list", .value = "elem"},
      {.type = CommandType::kLRange, .key = "list", .arg0 = 0, .arg1 = -1},
      {.type = CommandType::kLLen, .key = "list"},
      {.type = CommandType::kLIndex, .key = "list", .arg0 = -2},
      {.type = CommandType::kIncrBy, .key = "ctr", .arg0 = 41},
      {.type = CommandType::kCounter, .key = "ctr"},
  };
  for (const Command& cmd : commands) {
    const Command back = decode_command(encode_command(cmd));
    EXPECT_EQ(back.type, cmd.type);
    EXPECT_EQ(back.key, cmd.key);
    EXPECT_EQ(back.value, cmd.value);
    EXPECT_EQ(back.arg0, cmd.arg0);
    EXPECT_EQ(back.arg1, cmd.arg1);
  }
}

TEST(RespCommand, UnknownCommandRejected) {
  EXPECT_THROW((void)decode_command("*1\r\n$4\r\nPING\r\n"),
               common::StoreError);
  EXPECT_THROW((void)decode_command("*1\r\n$3\r\nGET\r\n"),  // missing key
               common::StoreError);
}

TEST(RespCommand, WireSizeIsExact) {
  const std::vector<Command> commands{
      {.type = CommandType::kSet, .key = "some-key", .value = std::string(300, 'x')},
      {.type = CommandType::kGet, .key = ""},
      {.type = CommandType::kLRange, .key = "l", .arg0 = -100, .arg1 = 100000},
      {.type = CommandType::kIncrBy, .key = "c", .arg0 = -1},
  };
  for (const Command& cmd : commands) {
    EXPECT_EQ(command_wire_size(cmd), encode_command(cmd).size());
  }
}

TEST(RespReply, GetFoundAndMissing) {
  Reply found{.ok = true, .blob = "data"};
  EXPECT_EQ(encode_reply(CommandType::kGet, found), "$4\r\ndata\r\n");
  Reply missing{.ok = false};
  EXPECT_EQ(encode_reply(CommandType::kGet, missing), "$-1\r\n");
  EXPECT_FALSE(decode_reply(CommandType::kGet, "$-1\r\n").ok);
  EXPECT_EQ(decode_reply(CommandType::kGet, "$4\r\ndata\r\n").blob, "data");
}

TEST(RespReply, AllTypesRoundTrip) {
  const std::vector<std::pair<CommandType, Reply>> cases{
      {CommandType::kSet, Reply{.ok = true}},
      {CommandType::kGet, Reply{.ok = true, .blob = "abc"}},
      {CommandType::kGet, Reply{.ok = false}},
      {CommandType::kDel, Reply{.ok = true}},
      {CommandType::kDel, Reply{.ok = false}},
      {CommandType::kExists, Reply{.ok = true}},
      {CommandType::kRPush, Reply{.ok = true, .integer = 17}},
      {CommandType::kLRange, Reply{.ok = true, .list = {"a", "", "ccc"}}},
      {CommandType::kLLen, Reply{.ok = true, .integer = 3}},
      {CommandType::kLIndex, Reply{.ok = true, .blob = "x"}},
      {CommandType::kIncrBy, Reply{.ok = true, .integer = -5}},
      {CommandType::kCounter, Reply{.ok = true, .integer = 0}},
  };
  for (const auto& [type, reply] : cases) {
    const std::string wire = encode_reply(type, reply);
    const Reply back = decode_reply(type, wire);
    EXPECT_EQ(back.ok, reply.ok);
    EXPECT_EQ(back.blob, reply.blob);
    EXPECT_EQ(back.list, reply.list);
    EXPECT_EQ(back.integer, reply.integer);
    EXPECT_EQ(reply_wire_size(type, reply), wire.size());
  }
}

TEST(RespReply, LRangeOfEmptyList) {
  Reply empty{.ok = true};
  EXPECT_EQ(encode_reply(CommandType::kLRange, empty), "*0\r\n");
  EXPECT_TRUE(decode_reply(CommandType::kLRange, "*0\r\n").list.empty());
}

TEST(RespReply, WrongShapeRejected) {
  EXPECT_THROW((void)decode_reply(CommandType::kGet, ":1\r\n"),
               common::StoreError);
  EXPECT_THROW((void)decode_reply(CommandType::kIncrBy, "$1\r\nx\r\n"),
               common::StoreError);
  EXPECT_THROW((void)decode_reply(CommandType::kLRange, "*1\r\n:5\r\n"),
               common::StoreError);
}

}  // namespace
}  // namespace hetsim::kvstore::resp

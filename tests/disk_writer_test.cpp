// Tests for the disk-backed partition storage (paper section III-E's
// "partitions stored on disk" option).
#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.h"
#include "data/generators.h"
#include "partition/disk_writer.h"
#include "partition/partitioner.h"

namespace hetsim::partition {
namespace {

namespace fs = std::filesystem;

class DiskWriterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("hetsim_disk_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

data::Dataset small_corpus() {
  data::TextCorpusConfig cfg;
  cfg.num_docs = 120;
  cfg.seed = 55;
  return data::generate_text_corpus(cfg, "disk-test");
}

TEST_F(DiskWriterTest, WriteThenReadRoundTrips) {
  const data::Dataset ds = small_corpus();
  const std::vector<std::size_t> sizes{50, 40, 30};
  const auto assignment = random_partitions(ds.size(), sizes, 3);
  const auto infos = write_partitions(ds, assignment, dir_);
  ASSERT_EQ(infos.size(), 3u);
  for (std::size_t p = 0; p < infos.size(); ++p) {
    EXPECT_EQ(infos[p].records, sizes[p]);
    const auto payloads = read_partition(infos[p].file);
    ASSERT_EQ(payloads.size(), sizes[p]);
    for (std::size_t k = 0; k < payloads.size(); ++k) {
      EXPECT_EQ(payloads[k], ds.records[assignment.partitions[p][k]].payload);
    }
  }
}

TEST_F(DiskWriterTest, ManifestMatchesFiles) {
  const data::Dataset ds = small_corpus();
  const std::vector<std::size_t> sizes{70, 50};
  const auto assignment = random_partitions(ds.size(), sizes, 5);
  const auto written = write_partitions(ds, assignment, dir_);
  const auto manifest = read_manifest(dir_);
  ASSERT_EQ(manifest.size(), written.size());
  for (std::size_t p = 0; p < manifest.size(); ++p) {
    EXPECT_EQ(manifest[p].file, written[p].file);
    EXPECT_EQ(manifest[p].records, written[p].records);
    EXPECT_EQ(manifest[p].bytes, written[p].bytes);
  }
}

TEST_F(DiskWriterTest, EmptyPartitionWritesEmptyFile) {
  const data::Dataset ds = small_corpus();
  const std::vector<std::size_t> sizes{120, 0};
  const auto assignment = random_partitions(ds.size(), sizes, 7);
  const auto infos = write_partitions(ds, assignment, dir_);
  EXPECT_EQ(infos[1].records, 0u);
  EXPECT_TRUE(read_partition(infos[1].file).empty());
}

TEST_F(DiskWriterTest, OverwriteReplacesPreviousContent) {
  const data::Dataset ds = small_corpus();
  const std::vector<std::size_t> big{120};
  const std::vector<std::size_t> split{60, 60};
  (void)write_partitions(ds, random_partitions(ds.size(), big, 1), dir_);
  const auto infos =
      write_partitions(ds, random_partitions(ds.size(), split, 1), dir_);
  EXPECT_EQ(infos.size(), 2u);
  EXPECT_EQ(read_partition(infos[0].file).size(), 60u);
  // Manifest reflects the new layout only.
  EXPECT_EQ(read_manifest(dir_).size(), 2u);
}

TEST_F(DiskWriterTest, MissingManifestThrows) {
  EXPECT_THROW((void)read_manifest(dir_ / "nope"), common::StoreError);
}

TEST_F(DiskWriterTest, CorruptPartitionFileThrows) {
  const data::Dataset ds = small_corpus();
  const auto assignment =
      random_partitions(ds.size(), std::vector<std::size_t>{120}, 1);
  const auto infos = write_partitions(ds, assignment, dir_);
  // Truncate mid-record.
  fs::resize_file(infos[0].file, fs::file_size(infos[0].file) - 3);
  EXPECT_THROW((void)read_partition(infos[0].file), common::StoreError);
}

}  // namespace
}  // namespace hetsim::partition

// phase-throw fixtures. The fixture-relative path starts with
// src/runtime/, which switches the rule on: throwing kvstore accessors
// are banned inside the phase-DAG runtime, where a store fault must
// land as a typed PhaseResult the dag can retry or degrade on.

namespace fxphase {

struct Reply {
  int status;
};

void ingest_legacy(Reply r) {
  expect_ok(r);  // expect: phase-throw
}

void ingest_qualified(Reply r) {
  kvstore::expect_ok(r);  // expect: phase-throw
}

void partition_legacy() {
  throw UnavailableError("master list incomplete");  // expect: phase-throw
}

void partition_qualified() {
  throw kvstore::UnavailableError("shard gone");  // expect: phase-throw
}

// Traps: the tokens inside comments and string literals stay silent,
// and identifiers that merely contain the token do not match.
void traps() {
  // a comment saying expect_ok or UnavailableError is fine
  const char* doc = "expect_ok throws UnavailableError on failure";
  (void)doc;
  int expect_ok_count = 0;  // token must be identifier-delimited
  (void)expect_ok_count;
}

}  // namespace fxphase

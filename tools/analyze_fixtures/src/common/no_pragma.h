// expect: pragma-once
// A header that forgot its include guard pragma; the finding lands on
// line 1.

namespace fxlint {

inline int answer() { return 42; }

}  // namespace fxlint

// Token-level rule fixtures. This file's fixture-relative path starts
// with src/common/, which switches on every dir-gated absorbed rule.

namespace fxlint {

std::mutex legacy_guard;  // expect: naked-mutex

std::thread legacy_worker;  // expect: raw-thread

int roll() { return rand(); }  // expect: nondeterminism

float energy_j = 0.0F;  // expect: float-accounting

void poke(kvstore::Store& store) {  // expect: direct-store
  store.set("k", "v");
}

}  // namespace fxlint

// Trap: a well-formed header. Must stay silent.
#pragma once

namespace fxlint {

inline int question() { return 6 * 7; }

}  // namespace fxlint

// lock-blocking fixtures: blocking traffic issued while a RankedMutex
// is held — client round-trips, fabric exchanges, sleeps, and a
// condition wait that releases only one of two held locks.

namespace fxlock {

class HotCache {
 public:
  void refill(kvstore::Client& client) {
    check::LockGuard g(mu_);
    client.get("hot");  // expect: lock-blocking
  }

  void rebalance(net::Fabric& fabric) {
    check::LockGuard g(mu_);
    fabric.exchange_cost(4, 4096);  // expect: lock-blocking
  }

  void nap() {
    check::LockGuard g(mu_);
    std::this_thread::sleep_for(tick_);  // expect: lock-blocking
  }

  void wait_wrong() {
    check::UniqueLock outer(mu_);
    check::UniqueLock lk(cv_mu_);
    cv_.wait(lk);  // expect: lock-blocking
  }

 private:
  check::RankedMutex mu_{check::LockRank::kHa};
  check::RankedMutex cv_mu_{check::LockRank::kStore};
  std::condition_variable_any cv_;
  std::chrono::milliseconds tick_{1};
};

}  // namespace fxlock

// lock-rank fixtures: acquisitions that violate the strict-descent
// rule, including one only visible through the call graph. Fixtures
// are lexed by hetsim_analyze, never compiled, so the check:: types
// are named without includes.

namespace fxlock {

// Shallow (rank 100) mutex behind a method: the inversion below is
// only reachable interprocedurally via plan()'s propagated min rank.
class PlanBoard {
 public:
  void plan() {
    check::LockGuard g(mu_);
    ++steps_;
  }

 private:
  check::RankedMutex mu_{check::LockRank::kScheduler};
  int steps_ = 0;
};

class StoreFront {
 public:
  void refresh(PlanBoard& board) {
    check::LockGuard g(mu_);
    board.plan();  // expect: lock-rank
  }

 private:
  check::RankedMutex mu_{check::LockRank::kStore};
};

class Ledger {
 public:
  void audit() {
    check::LockGuard outer(deep_mu_);
    check::LockGuard inner(shallow_mu_);  // expect: lock-rank
    ++entries_;
  }

  void equal_rank() {
    check::LockGuard a(deep_mu_);
    check::LockGuard b(peer_mu_);  // expect: lock-rank
  }

 private:
  check::RankedMutex shallow_mu_{check::LockRank::kTrace};
  check::RankedMutex deep_mu_{check::LockRank::kStore};
  check::RankedMutex peer_mu_{check::LockRank::kStore};
  int entries_ = 0;
};

}  // namespace fxlock

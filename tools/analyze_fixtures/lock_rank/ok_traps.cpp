// False-positive traps for the lock checkers: every pattern here is
// legal and must produce NO finding (the self-test fails if any line
// in this file fires).

namespace fxlock {

// Store-side accessor that shares method names with the blocking
// client API; calling it under a lock is fine.
class LocalTable {
 public:
  int get(const char* key) {
    (void)key;
    return width_;
  }

 private:
  int width_ = 1;
};

class QuietCache {
 public:
  // Guard scope ends before the blocking call.
  void scoped_then_fetch(kvstore::Client& c) {
    {
      check::LockGuard g(shallow_mu_);
      ++hits_;
    }
    c.get("k");
  }

  // Explicit unlock window around the round-trip, then re-lock.
  void window(kvstore::Client& c) {
    check::UniqueLock lk(shallow_mu_);
    lk.unlock();
    c.get("k");
    lk.lock();
    ++hits_;
  }

  // Deferred lambda: the body runs later, outside this lock.
  void schedule(kvstore::Client& c) {
    check::LockGuard g(deep_mu_);
    tasks_.push_back([&c] { c.get("later"); });
  }

  // Strictly descending acquisition is the sanctioned order.
  void ordered() {
    check::LockGuard a(shallow_mu_);
    check::LockGuard b(deep_mu_);
    ++hits_;
  }

  // Condition wait holding only the waited lock.
  void wait_alone() {
    check::UniqueLock lk(deep_mu_);
    cv_.wait(lk);
  }

  // Non-client receiver with a client-sounding method name.
  void local_read() {
    check::LockGuard g(deep_mu_);
    table_.get("k");
  }

  // Reviewed and waived: the suppression must silence the finding.
  void waived(kvstore::Client& c) {
    check::LockGuard g(deep_mu_);
    c.get("k");  // hetsim-analyze: allow(lock-blocking)
  }

 private:
  check::RankedMutex shallow_mu_{check::LockRank::kTrace};
  check::RankedMutex deep_mu_{check::LockRank::kStore};
  std::condition_variable_any cv_;
  LocalTable table_;
  std::vector<std::function<void()>> tasks_;
  int hits_ = 0;
};

}  // namespace fxlock

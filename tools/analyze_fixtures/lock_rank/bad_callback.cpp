// Opaque-callback fixtures: invoking a std::function (directly or via
// an alias type) while a lock is held. The analyzer cannot see what
// the callback does, so the invocation itself is the finding.

namespace fxlock {

class Notifier {
 public:
  using Hook = std::function<void()>;

  void fire() {
    check::LockGuard g(mu_);
    on_event_();  // expect: lock-blocking
  }

  void fire_alias() {
    check::LockGuard g(mu_);
    hook_();  // expect: lock-blocking
  }

  void fire_local(std::function<void()> probe) {
    check::LockGuard g(mu_);
    probe();  // expect: lock-blocking
  }

 private:
  check::RankedMutex mu_{check::LockRank::kTrace};
  std::function<void()> on_event_;
  Hook hook_;
};

}  // namespace fxlock

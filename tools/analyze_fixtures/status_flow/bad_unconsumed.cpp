// status-flow fixtures: produced Status values that are discarded or
// reach the end of the function without being consumed.

namespace fxstatus {

struct Status {
  int code = 0;
};

class Journal {
 public:
  Status append(int v) {
    last_ = v;
    return Status{0};
  }

  void drop_result() {
    append(1);  // expect: status-flow
  }

  void cast_away() {
    (void)append(2);  // expect: status-flow
  }

  void leave_unread() {
    const Status st = append(3);  // expect: status-flow
  }

  void auto_unread() {
    const auto verdict = append(4);  // expect: status-flow
  }

  void voided_is_not_checked() {
    const Status st = append(5);  // expect: status-flow
    (void)st;
  }

 private:
  int last_ = 0;
};

}  // namespace fxstatus

// The runtime's job outcome is a must-check type too: a silently
// dropped JobStatus hides degraded and data-unavailable runs.
namespace fxjob {

enum class JobStatus { kOk, kDegraded, kDataUnavailable };

class Scheduler {
 public:
  JobStatus classify() {
    return ticks_++ == 0 ? JobStatus::kOk : JobStatus::kDegraded;
  }

  void fire_and_forget() {
    classify();  // expect: status-flow
  }

  void classified_but_never_read() {
    const JobStatus outcome = classify();  // expect: status-flow
  }

  int consumed_is_fine() {
    const JobStatus outcome = classify();
    return outcome == JobStatus::kOk ? 0 : 1;
  }

 private:
  int ticks_ = 0;
};

}  // namespace fxjob

// False-positive traps for status-flow: every consumption idiom here
// is legitimate and must stay silent.

namespace fxstatus {

struct WriteResult {
  int acks = 0;
};

WriteResult commit(int v);

WriteResult commit(int v) {
  return WriteResult{v};
}

void expect_ok(WriteResult r);

void expect_ok(WriteResult r) {
  (void)r;
}

class Pipeline {
 public:
  // Returning the produced value hands it to the caller.
  WriteResult forward() {
    return commit(1);
  }

  // Branching on the value is consumption.
  void branched() {
    const WriteResult wr = commit(2);
    if (wr.acks == 0) {
      ++stalls_;
    }
  }

  // The blessed consume-and-assert helper takes the bare statement.
  void blessed() {
    expect_ok(commit(3));
  }

  // Moving the value into a sink is consumption.
  void moved() {
    WriteResult wr = commit(4);
    sink_ = std::move(wr);
  }

  // A lambda parameter of a status type is not a produced local.
  void inspected() {
    const auto accept = [](const WriteResult& r) { return r.acks > 0; };
    if (accept(commit(5))) {
      ++stalls_;
    }
  }

  // Reviewed and waived: the suppression must silence the finding.
  void waived() {
    commit(6);  // hetsim-analyze: allow(status-flow)
  }

 private:
  WriteResult sink_;
  int stalls_ = 0;
};

}  // namespace fxstatus

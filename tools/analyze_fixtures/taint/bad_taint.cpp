// determinism-taint fixtures: nondeterministic values flowing into
// reproducibility-bearing sinks (trace events, bench JSON, hashes).

namespace fxtaint {

struct Recorder {
  void add_span(int lane, double begin_s, double end_s) {
    (void)lane;
    (void)begin_s;
    (void)end_s;
  }
  void add_instant(int lane, double at_s) {
    (void)lane;
    (void)at_s;
  }
  void add_counter(int lane, double value) {
    (void)lane;
    (void)value;
  }
};

class Probe {
 public:
  // Wall clock straight into a trace event.
  void stamp_span() {
    const double now_s = static_cast<double>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    rec_.add_span(0, now_s, now_s);  // expect: determinism-taint
  }

  // rand() into the bench JSON.
  void jitter_bench() {
    const int jitter = rand();
    write_bench_json(path_, jitter);  // expect: determinism-taint
  }

  // Unordered-container iteration order into a hash.
  void digest() {
    std::uint64_t h = 0;
    for (const auto& [key, value] : shares_) {
      h = hash_combine(h, value);  // expect: determinism-taint
    }
  }

  // Pointer value into a trace event.
  void leak_pointer(const int* p) {
    const auto addr = reinterpret_cast<uintptr_t>(p);
    rec_.add_instant(0, static_cast<double>(addr));  // expect: determinism-taint
  }

  // Taint through a helper's return value (interprocedural round).
  double wall_seconds() {
    return static_cast<double>(std::time(nullptr));
  }

  void stamp_counter() {
    rec_.add_counter(0, wall_seconds());  // expect: determinism-taint
  }

 private:
  Recorder rec_;
  std::string path_;
  std::unordered_map<std::string, int> shares_;
};

}  // namespace fxtaint

// False-positive traps for determinism-taint: sanitized, ordered, or
// simulated values feeding sinks must stay silent.

namespace fxtaint {

class Auditor {
 public:
  // Collecting from an unordered container is fine once the result is
  // sorted — the order is no longer host-dependent.
  void sorted_digest() {
    std::vector<int> loads;
    for (const auto& [key, value] : counts_) {
      loads.push_back(value);
    }
    std::sort(loads.begin(), loads.end());
    hash_u64(loads.size());
  }

  // std::map iterates in key order; nothing nondeterministic flows.
  void ordered_digest() {
    for (const auto& [key, value] : ranks_) {
      hash_combine(seed_, value);
    }
  }

  // Virtual (simulated) time is deterministic input, not wall clock.
  void virtual_stamp(double sim_now_s) {
    write_bench_json(out_, sim_now_s);
  }

  // Reviewed and waived: the suppression must silence the finding.
  void pinned() {
    const int salt = rand();
    mix64(salt);  // hetsim-analyze: allow(determinism-taint)
  }

 private:
  std::unordered_map<std::string, int> counts_;
  std::map<std::string, int> ranks_;
  std::uint64_t seed_ = 0;
  std::string out_;
};

}  // namespace fxtaint

// hetsim_lint — repo-specific static lint, registered as a CTest test so
// plain `ctest` catches rule violations even without CI.
//
// Rules (rationale in DESIGN.md §7):
//
//   naked-mutex       std::mutex / std::recursive_mutex / std::timed_mutex /
//                     std::shared_mutex / std::condition_variable (the
//                     plain one; _any is fine) outside src/check/. All
//                     locking goes through check::RankedMutex so the
//                     global lock hierarchy is enforced at runtime
//                     (src/par's pool holds its fan-out state under a
//                     RankedMutex too — rank kParPool).
//   raw-thread        std::thread / std::jthread outside src/par/ and
//                     src/runtime/. Ad-hoc threads bypass both the
//                     deterministic chunking of par::ThreadPool and the
//                     runtime's scheduler; spawn through those layers.
//   nondeterminism    std::random_device, rand()/srand(), wall-clock reads
//                     (std::chrono::{system,steady,high_resolution}_clock,
//                     gettimeofday, clock_gettime, time APIs) anywhere in
//                     src/. The runtime guarantees byte-identical traces
//                     for a given seed; one wall-clock read breaks that
//                     silently.
//   float-accounting  `float` in the energy/time accounting directories
//                     (common, cluster, core, energy, estimator, optimize,
//                     runtime). Accounting is double end to end; float
//                     truncation skews joule and makespan sums.
//   unchecked-reply   `(void)`-discarding the result of a kvstore client
//                     .drain( / .execute( call. Replies carry a Status
//                     since the fault-injection work; swallowing one
//                     hides injected errors and retry exhaustion. Wrap
//                     the call in kvstore::expect_ok(...) (which throws
//                     UnavailableError on failure) or inspect
//                     Reply::status.
//   direct-store      naming kvstore::Store (or calling a .store()/
//                     ->store() accessor) outside src/kvstore/, src/ha/
//                     and src/cluster/. Raw store access bypasses
//                     ha::ShardRouter placement, so the write is
//                     invisible to replication, failover rescue, and
//                     anti-entropy repair — go through ha::Client (or
//                     kvstore::Client for unreplicated paths).
//   pragma-once       every header carries #pragma once.
//
// Matching is token-boundary-aware and ignores comments and string
// literals. Suppress a deliberate use with a trailing comment:
//     std::mutex mu;  // hetsim-lint: allow(naked-mutex)
//
// Usage:
//   hetsim_lint <dir>...            lint the trees; exit 1 on violations
//   hetsim_lint --self-test <dir>   scan the seeded-violation fixtures and
//                                   require every rule to fire (so a rule
//                                   that rots into a no-op fails CI)
#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if `needle` occurs in `line` delimited by non-identifier
/// characters on both sides (':' also rejected on the left, so qualified
/// names don't match their own unqualified tails).
bool has_token(const std::string& line, std::string_view needle) {
  std::size_t at = 0;
  while ((at = line.find(needle, at)) != std::string::npos) {
    const bool left_ok =
        at == 0 || (!ident_char(line[at - 1]) && line[at - 1] != ':');
    const std::size_t end = at + needle.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return true;
    at += 1;
  }
  return false;
}

/// Blanks out string/char literals and comments, tracking /* */ state
/// across lines. Good enough for lint: no raw strings or trigraphs in
/// this codebase.
std::string strip_noise(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      }
      out.push_back(' ');
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      out.push_back(' ');
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(' ');
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          ++i;
        } else if (line[i] == quote) {
          break;
        }
        out.push_back(' ');
        ++i;
      }
      continue;
    }
    out.push_back(c);
  }
  return out;
}

bool in_dir(const std::string& rel_path, std::string_view dir) {
  const std::string needle = std::string(dir) + "/";
  return rel_path.rfind(needle, 0) == 0 ||
         rel_path.find("/" + needle) != std::string::npos;
}

constexpr std::string_view kMutexTokens[] = {
    "std::mutex", "std::recursive_mutex", "std::timed_mutex",
    "std::recursive_timed_mutex", "std::shared_mutex",
    "std::shared_timed_mutex", "std::condition_variable"};

constexpr std::string_view kThreadTokens[] = {"std::thread", "std::jthread"};

constexpr std::string_view kNondetTokens[] = {
    "std::random_device", "rand", "srand", "drand48",
    "std::chrono::system_clock", "std::chrono::steady_clock",
    "std::chrono::high_resolution_clock", "gettimeofday", "clock_gettime",
    "timespec_get"};

constexpr std::string_view kAccountingDirs[] = {
    "common", "cluster", "core", "energy", "estimator", "optimize",
    "runtime"};

class Linter {
 public:
  void lint_tree(const fs::path& root) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) lint_file(root, file);
  }

  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t files_scanned() const { return files_scanned_; }

 private:
  void add(const fs::path& file, std::size_t line, std::string rule,
           std::string message) {
    violations_.push_back(
        {file.string(), line, std::move(rule), std::move(message)});
  }

  void lint_file(const fs::path& root, const fs::path& file) {
    ++files_scanned_;
    const std::string rel = fs::relative(file, root).generic_string();
    std::ifstream in(file);
    std::string raw;
    std::vector<std::string> lines;
    while (std::getline(in, raw)) lines.push_back(raw);

    const bool is_header = file.extension() == ".h";
    const bool mutex_rule_applies = !in_dir(rel, "check");
    const bool thread_rule_applies =
        !in_dir(rel, "par") && !in_dir(rel, "runtime");
    const bool float_rule_applies =
        std::any_of(std::begin(kAccountingDirs), std::end(kAccountingDirs),
                    [&](std::string_view d) { return in_dir(rel, d); });
    const bool store_rule_applies = !in_dir(rel, "kvstore") &&
                                    !in_dir(rel, "ha") &&
                                    !in_dir(rel, "cluster");

    bool saw_pragma_once = false;
    bool in_block_comment = false;
    for (std::size_t n = 0; n < lines.size(); ++n) {
      const std::string& original = lines[n];
      if (original.find("#pragma once") != std::string::npos) {
        saw_pragma_once = true;
      }
      const auto allowed = [&](std::string_view rule) {
        return original.find("hetsim-lint: allow(" + std::string(rule) +
                             ")") != std::string::npos;
      };
      const std::string code = strip_noise(original, in_block_comment);
      if (mutex_rule_applies && !allowed("naked-mutex")) {
        for (const std::string_view tok : kMutexTokens) {
          if (has_token(code, tok)) {
            add(file, n + 1, "naked-mutex",
                std::string(tok) +
                    " outside src/check/ — use check::RankedMutex (+ "
                    "std::condition_variable_any) so the lock hierarchy "
                    "is enforced; par::ThreadPool shows the pattern");
          }
        }
      }
      if (thread_rule_applies && !allowed("raw-thread")) {
        for (const std::string_view tok : kThreadTokens) {
          if (has_token(code, tok)) {
            add(file, n + 1, "raw-thread",
                std::string(tok) +
                    " outside src/par/ and src/runtime/ — fan work out "
                    "through par::ThreadPool (deterministic chunking) or "
                    "the job runtime instead of spawning raw threads");
          }
        }
      }
      if (!allowed("nondeterminism")) {
        for (const std::string_view tok : kNondetTokens) {
          if (has_token(code, tok)) {
            add(file, n + 1, "nondeterminism",
                std::string(tok) +
                    " breaks the byte-identical-trace guarantee — take "
                    "seeds from common::Rng and time from the virtual "
                    "clock");
          }
        }
      }
      if (float_rule_applies && !allowed("float-accounting") &&
          has_token(code, "float")) {
        add(file, n + 1, "float-accounting",
            "float in energy/time accounting — use double end to end");
      }
      if (store_rule_applies && !allowed("direct-store") &&
          (has_token(code, "kvstore::Store") ||
           code.find(".store(") != std::string::npos ||
           code.find("->store(") != std::string::npos)) {
        add(file, n + 1, "direct-store",
            "direct kvstore::Store access outside src/kvstore/, src/ha/ "
            "and src/cluster/ — route data-plane traffic through "
            "ha::Client / ha::ShardRouter (or kvstore::Client for "
            "unreplicated paths) so replication, failover rescue, and "
            "anti-entropy repair see the operation");
      }
      if (!allowed("unchecked-reply") &&
          code.find("(void)") != std::string::npos &&
          (code.find(".drain(") != std::string::npos ||
           code.find(".execute(") != std::string::npos)) {
        add(file, n + 1, "unchecked-reply",
            "kvstore Reply status discarded — wrap the call in "
            "kvstore::expect_ok(...) or inspect Reply::status instead of "
            "(void)-discarding it");
      }
    }
    if (is_header && !saw_pragma_once) {
      add(file, 1, "pragma-once", "header must carry #pragma once");
    }
  }

  std::vector<Violation> violations_;
  std::size_t files_scanned_ = 0;
};

int report(const Linter& linter) {
  for (const Violation& v : linter.violations()) {
    std::cerr << v.file << ":" << v.line << ": [" << v.rule << "] "
              << v.message << "\n";
  }
  if (!linter.violations().empty()) {
    std::cerr << "hetsim_lint: " << linter.violations().size()
              << " violation(s) in " << linter.files_scanned()
              << " file(s)\n";
    return 1;
  }
  std::cout << "hetsim_lint: OK (" << linter.files_scanned()
            << " files clean)\n";
  return 0;
}

int self_test(const fs::path& fixtures) {
  Linter linter;
  linter.lint_tree(fixtures);
  std::set<std::string> fired;
  for (const Violation& v : linter.violations()) fired.insert(v.rule);
  const std::vector<std::string> expected{
      "naked-mutex",      "raw-thread",  "nondeterminism",
      "float-accounting", "pragma-once", "unchecked-reply",
      "direct-store"};
  int missing = 0;
  for (const std::string& rule : expected) {
    if (fired.count(rule) == 0) {
      std::cerr << "hetsim_lint self-test: rule '" << rule
                << "' failed to fire on its seeded fixture\n";
      ++missing;
    }
  }
  if (missing != 0) return 1;
  std::cout << "hetsim_lint self-test: all " << expected.size()
            << " rules fired across " << linter.violations().size()
            << " seeded violations\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::cerr << "usage: hetsim_lint [--self-test] <dir>...\n";
    return 2;
  }
  if (args[0] == "--self-test") {
    if (args.size() != 2) {
      std::cerr << "usage: hetsim_lint --self-test <fixture-dir>\n";
      return 2;
    }
    return self_test(args[1]);
  }
  Linter linter;
  for (const std::string& dir : args) {
    if (!fs::is_directory(dir)) {
      std::cerr << "hetsim_lint: not a directory: " << dir << "\n";
      return 2;
    }
    linter.lint_tree(dir);
  }
  return report(linter);
}

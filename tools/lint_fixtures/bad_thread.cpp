// Seeded violation: raw-thread. Threads outside src/par/ and
// src/runtime/ must go through par::ThreadPool or the job runtime.
#include <thread>

std::thread g_seeded_raw_thread;
std::jthread* g_seeded_raw_jthread = nullptr;

// Seeded violation: this header deliberately lacks the include guard
// pragma every hetsim header must carry.

inline int seeded_unguarded_header() { return 42; }

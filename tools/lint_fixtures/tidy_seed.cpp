// Seeded clang-tidy violation (bugprone-use-after-move): CI asserts that
// clang-tidy exits non-zero on this file, proving the tidy gate works.
#include <string>
#include <utility>

namespace {
std::string consume(std::string s) { return s; }
}  // namespace

int main() {
  std::string a = "seeded";
  const std::string b = consume(std::move(a));
  return static_cast<int>(a.size() + b.size());  // use-after-move of `a`
}

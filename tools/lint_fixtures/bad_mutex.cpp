// Seeded violation: naked-mutex. Locking outside src/check/ must go
// through check::RankedMutex.
#include <mutex>

std::mutex g_seeded_naked_mutex;
std::condition_variable* g_seeded_naked_cv = nullptr;

// Seeded violation: direct-store. Touching a node's kvstore::Store (or
// grabbing it through a .store() accessor) from outside src/kvstore/,
// src/ha/ and src/cluster/ bypasses ha::ShardRouter placement — the
// write never reaches the replicas, so failover rescue and anti-entropy
// repair cannot see it. Go through ha::Client instead.
namespace kvstore {
struct Store {
  void set(const char*, const char*) {}
};
}  // namespace kvstore

struct FakeCluster {
  kvstore::Store& store(int) { return s_; }
  kvstore::Store s_;
};

void seeded_direct_store() {
  FakeCluster cluster;
  cluster.store(0).set("key", "value");
}

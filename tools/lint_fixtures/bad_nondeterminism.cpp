// Seeded violation: nondeterminism. Ambient entropy and wall clocks are
// banned from deterministic paths.
#include <chrono>
#include <cstdlib>
#include <random>

int seeded_entropy() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}

long seeded_wall_clock() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

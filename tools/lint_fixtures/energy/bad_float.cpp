// Seeded violation: float-accounting. Energy/time accounting is double
// end to end.
float g_seeded_float_joules = 0.0F;

// Seeded violation: unchecked-reply. Discarding a kvstore client's
// drain()/execute() result swallows the Reply status the fault layer
// reports through; wrap in kvstore::expect_ok(...) instead.
struct FakeClient {
  int drain() { return 0; }
  int execute(int) { return 0; }
};

void seeded_unchecked_reply() {
  FakeClient c;
  (void)c.drain();
  (void)c.execute(0);
}

// status-flow — kvstore Status / Reply / ha result discipline, flow
// tracked from producer call to consumption.
//
// Two findings:
//   1. A statement that is nothing but a producer call — including the
//      `(void)call(...)` spelling — discards the result outright.
//      (`expect_ok(...)` is the blessed consume-and-assert helper and
//      is exempt: it is deliberately not [[nodiscard]] so a bare
//      `expect_ok(c.drain());` statement is the idiom.)
//   2. A local variable of a status-carrying type (or `auto` bound to a
//      producer call) that reaches the end of the function without a
//      single further mention was produced but never consumed. Any
//      later mention counts — returning it, branching on it, moving it
//      into a consumer — except the bare `(void)var;` cast.
//
// A "producer" is any resolved callee whose declared return type names
// Status, Reply, WriteResult, ReadResult or the runtime's JobStatus.
// Unresolvable calls are not guessed at.
#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "analyze/checkers.h"
#include "analyze/walk.h"

namespace hetsim::analyze {

namespace {

const std::set<std::string> kStatusTypes = {"Status", "Reply", "WriteResult",
                                            "ReadResult", "JobStatus"};

/// Consuming helpers that exist precisely to swallow a produced value.
const std::set<std::string> kCheckedConsumers = {"expect_ok"};

bool punct(const Token& t, const char* s) {
  return t.kind == Tk::kPunct && t.text == s;
}

/// Does a return-type token string name a status-carrying type?
std::string status_type_in(const std::string& ret) {
  for (const std::string& ty : kStatusTypes) {
    std::size_t at = ret.find(ty);
    while (at != std::string::npos) {
      const bool left_ok = at == 0 || !(std::isalnum(static_cast<unsigned char>(
                                            ret[at - 1])) != 0 ||
                                        ret[at - 1] == '_');
      const std::size_t end = at + ty.size();
      const bool right_ok =
          end >= ret.size() ||
          !(std::isalnum(static_cast<unsigned char>(ret[end])) != 0 ||
            ret[end] == '_');
      if (left_ok && right_ok) return ty;
      at = ret.find(ty, at + 1);
    }
  }
  return "";
}

struct TrackedVar {
  std::string name;
  std::string type;      // what the message should call it
  std::size_t decl_end;  // scan for mentions after this token
  int line = 0;
};

class StatusWalker {
 public:
  StatusWalker(const Resolver& resolver, std::vector<Finding>& out)
      : r_(resolver), idx_(resolver.index()), out_(out) {}

  void walk(std::size_t fid) {
    const FunctionDef& fn = idx_.funcs[fid];
    const SourceFile& file = idx_.files[fn.file];
    const std::vector<Token>& t = file.tokens;
    const LocalTypes locals = r_.collect_locals(fn);
    std::vector<TrackedVar> tracked;

    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      // Local declarations of status-carrying values.
      if (t[i].kind == Tk::kIdent && i + 1 < t.size()) {
        const bool decl_next = punct(t[i + 1], "=") || punct(t[i + 1], "{") ||
                               punct(t[i + 1], ";") || punct(t[i + 1], ":");
        if (decl_next) {
          const std::string type = terminal_before(t, i);
          if (kStatusTypes.count(type) != 0) {
            tracked.push_back({t[i].text, type, i, t[i].line});
            continue;
          }
          if (type == "auto" && punct(t[i + 1], "=")) {
            const std::string produced = producer_after(fn, locals, i + 2);
            if (!produced.empty()) {
              tracked.push_back({t[i].text, produced, i, t[i].line});
              continue;
            }
          }
        }
      }
      // Bare-statement producer calls.
      if (t[i].kind == Tk::kIdent && i + 1 < t.size() && punct(t[i + 1], "(")) {
        CallSite call;
        if (!r_.parse_call(fn, locals, i, call)) continue;
        if (kCheckedConsumers.count(call.name) != 0) continue;
        const std::string produced = producer_type(fn, call);
        if (produced.empty()) continue;
        // Expression start: back over the receiver / qualifier chain.
        std::size_t s = call.name_at;
        while (s >= 2 && (punct(t[s - 1], ".") || punct(t[s - 1], "->") ||
                          punct(t[s - 1], "::")) &&
               t[s - 2].kind == Tk::kIdent) {
          s -= 2;
        }
        // Optional `(void)` cast prefix.
        if (s >= 3 && punct(t[s - 1], ")") && t[s - 2].kind == Tk::kIdent &&
            t[s - 2].text == "void" && punct(t[s - 3], "(")) {
          s -= 3;
        }
        const bool stmt_start =
            s == 0 || punct(t[s - 1], ";") || punct(t[s - 1], "{") ||
            punct(t[s - 1], "}");
        const bool stmt_end =
            call.close + 1 < t.size() && punct(t[call.close + 1], ";");
        if (stmt_start && stmt_end) {
          out_.push_back({"status-flow", file.rel, t[i].line,
                          "result of '" + call.name + "' (" + produced +
                              ") is discarded; check or consume it "
                              "(expect_ok(...) if failure is impossible)"});
        }
      }
    }

    // Mention scan for tracked locals.
    for (const TrackedVar& var : tracked) {
      bool consumed = false;
      for (std::size_t i = var.decl_end + 1; i < fn.body_end; ++i) {
        if (t[i].kind != Tk::kIdent || t[i].text != var.name) continue;
        // `(void)var;` is not consumption.
        if (i >= 3 && punct(t[i - 1], ")") && t[i - 2].kind == Tk::kIdent &&
            t[i - 2].text == "void" && punct(t[i - 3], "(") &&
            i + 1 < t.size() && punct(t[i + 1], ";")) {
          continue;
        }
        consumed = true;
        break;
      }
      if (!consumed) {
        out_.push_back({"status-flow", file.rel, var.line,
                        "'" + var.name + "' (" + var.type +
                            ") is produced but never consumed before the "
                            "end of the function"});
      }
    }
  }

 private:
  /// Status type produced by the call, or "" when not a producer.
  std::string producer_type(const FunctionDef& fn, const CallSite& call) {
    for (const std::size_t c : r_.callees(fn, call)) {
      const std::string ty = status_type_in(idx_.funcs[c].ret);
      if (!ty.empty()) return ty;
    }
    return "";
  }

  /// First call at-or-after token `i` that is a producer ("" if the
  /// initializer is not a resolvable producer call).
  std::string producer_after(const FunctionDef& fn, const LocalTypes& locals,
                             std::size_t i) {
    const std::vector<Token>& t = idx_.files[fn.file].tokens;
    for (std::size_t j = i; j < fn.body_end && j < i + 8; ++j) {
      if (punct(t[j], ";")) break;
      if (t[j].kind == Tk::kIdent && j + 1 < t.size() && punct(t[j + 1], "(")) {
        CallSite call;
        if (r_.parse_call(fn, locals, j, call)) {
          return producer_type(fn, call);
        }
      }
    }
    return "";
  }

  const Resolver& r_;
  const Index& idx_;
  std::vector<Finding>& out_;
};

}  // namespace

void check_status(const Index& index, std::vector<Finding>& out) {
  const Resolver resolver(index);
  StatusWalker walker(resolver, out);
  for (std::size_t i = 0; i < index.funcs.size(); ++i) {
    walker.walk(i);
  }
}

}  // namespace hetsim::analyze

#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "analyze/source.h"

namespace hetsim::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Harvest `allow(...)` / `expect: ...` directives from one comment.
void scan_directives(std::string_view comment, int line, SourceFile& file) {
  for (const std::string_view marker :
       {std::string_view("hetsim-analyze: allow("),
        std::string_view("hetsim-lint: allow(")}) {
    std::size_t at = comment.find(marker);
    while (at != std::string_view::npos) {
      const std::size_t open = at + marker.size();
      const std::size_t close = comment.find(')', open);
      if (close == std::string_view::npos) break;
      std::string rules(comment.substr(open, close - open));
      std::stringstream ss(rules);
      std::string rule;
      while (std::getline(ss, rule, ',')) {
        const std::size_t b = rule.find_first_not_of(" \t");
        const std::size_t e = rule.find_last_not_of(" \t");
        if (b != std::string::npos) {
          file.allows[line].insert(rule.substr(b, e - b + 1));
        }
      }
      at = comment.find(marker, close);
    }
  }
  const std::size_t ex = comment.find("expect:");
  if (ex != std::string_view::npos &&
      comment.find("hetsim") == std::string_view::npos) {
    std::stringstream ss(std::string(comment.substr(ex + 7)));
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const std::size_t b = rule.find_first_not_of(" \t");
      const std::size_t e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) {
        file.expects[line].push_back(rule.substr(b, e - b + 1));
      }
    }
  }
}

}  // namespace

void lex(std::string_view text, SourceFile& file) {
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline
  const auto peek = [&](std::size_t off) -> char {
    return i + off < text.size() ? text[i + off] : '\0';
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor line: skip to end of line (honoring backslash
    // continuations) so #define bodies can't unbalance brace tracking.
    // Trailing // comments on the line still get directive-scanned.
    if (c == '#' && at_line_start) {
      while (i < text.size()) {
        if (text[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (text[i] == '/' && peek(1) == '/') {
          const std::size_t eol = text.find('\n', i);
          const std::size_t end =
              eol == std::string_view::npos ? text.size() : eol;
          scan_directives(text.substr(i + 2, end - i - 2), line, file);
          i = end;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    if (c == '/' && peek(1) == '/') {
      const std::size_t eol = text.find('\n', i);
      const std::size_t end = eol == std::string_view::npos ? text.size() : eol;
      scan_directives(text.substr(i + 2, end - i - 2), line, file);
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < text.size() &&
             !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        ++j;
      }
      scan_directives(text.substr(i + 2, j - i - 2), start_line, file);
      i = j + 2 > text.size() ? text.size() : j + 2;
      continue;
    }
    if (c == '"' || (c == 'R' && peek(1) == '"')) {
      if (c == 'R') {
        // Raw string: R"delim( ... )delim"
        std::size_t d = i + 2;
        while (d < text.size() && text[d] != '(') ++d;
        const std::string close =
            ")" + std::string(text.substr(i + 2, d - i - 2)) + "\"";
        const std::size_t end = text.find(close, d);
        const int tok_line = line;
        for (std::size_t k = i; k < end && k < text.size(); ++k) {
          if (text[k] == '\n') ++line;
        }
        file.tokens.push_back({Tk::kString, "\"\"", tok_line});
        i = end == std::string_view::npos ? text.size() : end + close.size();
        continue;
      }
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != '"') {
        if (text[j] == '\\') ++j;
        ++j;
      }
      file.tokens.push_back({Tk::kString, "\"\"", line});
      i = j + 1 > text.size() ? text.size() : j + 1;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < text.size() && text[j] != '\'') {
        if (text[j] == '\\') ++j;
        ++j;
      }
      file.tokens.push_back({Tk::kChar, "''", line});
      i = j + 1 > text.size() ? text.size() : j + 1;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < text.size() &&
             (ident_char(text[j]) || text[j] == '.' ||
              ((text[j] == '+' || text[j] == '-') && j > i &&
               (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      file.tokens.push_back(
          {Tk::kNumber, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < text.size() && ident_char(text[j])) ++j;
      file.tokens.push_back(
          {Tk::kIdent, std::string(text.substr(i, j - i)), line});
      i = j;
      continue;
    }
    // Multi-char operators the checkers match on.
    if (c == ':' && peek(1) == ':') {
      file.tokens.push_back({Tk::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && peek(1) == '>') {
      file.tokens.push_back({Tk::kPunct, "->", line});
      i += 2;
      continue;
    }
    file.tokens.push_back({Tk::kPunct, std::string(1, c), line});
    ++i;
  }
}

bool load_source(const std::string& path, const std::string& rel,
                 SourceFile& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  out.path = path;
  out.rel = rel;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') {
      out.lines.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.lines.push_back(cur);
  lex(text, out);
  return true;
}

bool in_dir(std::string_view rel, std::string_view dir) {
  return rel.size() > dir.size() + 1 && rel.substr(0, dir.size()) == dir &&
         rel[dir.size()] == '/';
}

std::size_t match_brace(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != Tk::kPunct) continue;
    if (tokens[i].text == "{") ++depth;
    if (tokens[i].text == "}" && --depth == 0) return i;
  }
  return tokens.size();
}

std::size_t match_paren(const std::vector<Token>& tokens, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != Tk::kPunct) continue;
    if (tokens[i].text == "(") ++depth;
    if (tokens[i].text == ")" && --depth == 0) return i;
  }
  return tokens.size();
}

std::uint64_t stable_hash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace hetsim::analyze

#include <algorithm>

#include "analyze/walk.h"

namespace hetsim::analyze {

namespace {

const std::set<std::string> kCallKeywords = {
    "if",          "for",          "while",   "switch",
    "catch",       "return",       "sizeof",  "new",
    "delete",      "alignof",      "decltype", "static_cast",
    "dynamic_cast", "reinterpret_cast", "const_cast", "noexcept",
    "requires",    "operator",     "alignas", "throw",
    "assert",      "defined",      "static_assert"};

const std::set<std::string> kNotATypeName = {
    "return", "new",    "delete",   "throw",    "case",    "goto",
    "else",   "typedef", "using",   "namespace", "template", "typename",
    "public", "private", "protected", "break",   "continue", "do",
    "const",  "static",  "constexpr", "mutable", "inline",  "volatile",
    "struct", "class",   "enum",     "operator", "co_return", "co_yield",
    "sizeof", "explicit", "virtual", "friend",   "extern",   "register",
    "if",     "while",   "for",     "switch",   "catch"};

bool punct(const Token& t, const char* s) {
  return t.kind == Tk::kPunct && t.text == s;
}

}  // namespace

std::string terminal_before(const std::vector<Token>& t, std::size_t at) {
  std::size_t i = at;
  while (i > 0 && (punct(t[i - 1], "&") || punct(t[i - 1], "*"))) --i;
  if (i == 0) return "";
  if (t[i - 1].kind == Tk::kIdent) {
    return kNotATypeName.count(t[i - 1].text) != 0 ? "" : t[i - 1].text;
  }
  if (punct(t[i - 1], ">")) {
    int depth = 0;
    for (std::size_t j = i; j-- > 0;) {
      if (punct(t[j], ">")) ++depth;
      if (punct(t[j], "<") && --depth == 0) {
        if (j > 0 && t[j - 1].kind == Tk::kIdent) return t[j - 1].text;
        return "";
      }
    }
  }
  return "";
}

bool is_call_keyword(const std::string& name) {
  return kCallKeywords.count(name) != 0;
}

Resolver::Resolver(const Index& index) : index_(index) {
  for (const auto& [klass, _] : index_.members) class_keys_.insert(klass);
  for (const auto& [klass, _] : index_.mutexes) class_keys_.insert(klass);
  for (const FunctionDef& fn : index_.funcs) {
    if (!fn.klass.empty()) class_keys_.insert(fn.klass);
  }
}

std::string Resolver::class_key(const std::string& terminal) const {
  if (terminal.empty() || class_keys_.count(terminal) != 0) return terminal;
  std::string found;
  int hits = 0;
  const std::string suffix = "::" + terminal;
  for (const std::string& k : class_keys_) {
    if (k.size() > suffix.size() &&
        k.compare(k.size() - suffix.size(), suffix.size(), suffix) == 0) {
      found = k;
      ++hits;
    }
  }
  return hits == 1 ? found : terminal;
}

LocalTypes Resolver::collect_locals(const FunctionDef& fn) const {
  const std::vector<Token>& t = index_.files[fn.file].tokens;
  LocalTypes locals;
  // Parameters: split [params_begin + 1, params_end) on top-level ','.
  std::size_t seg = fn.params_begin + 1;
  int paren = 0;
  int angle = 0;
  const auto take_param = [&](std::size_t b, std::size_t e) {
    // name = last ident of the segment; needs a type ident before it.
    std::size_t name_at = e;
    while (name_at > b && t[name_at - 1].kind != Tk::kIdent) --name_at;
    if (name_at == b) return;
    const std::string term = terminal_before(t, name_at - 1);
    if (term.empty()) return;  // unnamed or single-token param
    locals[t[name_at - 1].text] = term;
  };
  for (std::size_t i = fn.params_begin + 1; i < fn.params_end; ++i) {
    if (punct(t[i], "(")) ++paren;
    if (punct(t[i], ")")) --paren;
    if (punct(t[i], "<") && i > 0 && t[i - 1].kind == Tk::kIdent) ++angle;
    if (punct(t[i], ">") && angle > 0) --angle;
    if (punct(t[i], ",") && paren == 0 && angle == 0) {
      take_param(seg, i);
      seg = i + 1;
    }
  }
  if (seg < fn.params_end) take_param(seg, fn.params_end);

  // Body declarations: ident N followed by a declarator terminator,
  // with a type ident (or closed template) directly before.
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    if (t[i].kind != Tk::kIdent || i + 1 >= t.size()) continue;
    const Token& nx = t[i + 1];
    const bool term_next =
        punct(nx, "=") || punct(nx, ";") || punct(nx, "{") ||
        punct(nx, "(") || punct(nx, ":") || punct(nx, ",");
    if (!term_next) continue;
    const std::string type = terminal_before(t, i);
    if (type.empty() || kNotATypeName.count(t[i].text) != 0) continue;
    // `x.y` / `x->y` / `a::b` are accesses, not declarations.
    std::size_t p = i;
    while (p > 0 && (punct(t[p - 1], "&") || punct(t[p - 1], "*"))) --p;
    if (p >= 2 && (punct(t[p - 2], ".") || punct(t[p - 2], "->") ||
                   punct(t[p - 2], "::"))) {
      continue;
    }
    if (locals.count(t[i].text) == 0) locals[t[i].text] = type;
  }
  return locals;
}

std::string Resolver::type_of(const FunctionDef& fn, const LocalTypes& locals,
                              const std::string& name) const {
  const auto it = locals.find(name);
  if (it != locals.end()) return it->second;
  if (const MemberDecl* m = index_.member(fn.klass, name)) {
    return m->type_terminal;
  }
  return "";
}

bool Resolver::parse_call(const FunctionDef& fn, const LocalTypes& locals,
                          std::size_t i, CallSite& out) const {
  const std::vector<Token>& t = index_.files[fn.file].tokens;
  if (t[i].kind != Tk::kIdent || i + 1 >= t.size() || !punct(t[i + 1], "(")) {
    return false;
  }
  if (is_call_keyword(t[i].text)) return false;
  // `Type name(...)` is a declaration, not a call.
  if (i > 0 && t[i - 1].kind == Tk::kIdent &&
      kNotATypeName.count(t[i - 1].text) == 0) {
    return false;
  }
  out = CallSite{};
  out.name = t[i].text;
  out.name_at = i;
  out.open = i + 1;
  out.close = match_paren(t, i + 1);
  if (i >= 2 && (punct(t[i - 1], ".") || punct(t[i - 1], "->"))) {
    out.has_receiver = true;
    if (t[i - 2].kind == Tk::kIdent) {
      out.receiver = t[i - 2].text;
      // Don't treat `x.y.name(...)` / `a->b->name(...)` chains as
      // resolved through the terminal ident alone.
      const bool chained =
          i >= 4 && (punct(t[i - 3], ".") || punct(t[i - 3], "->") ||
                     punct(t[i - 3], "::"));
      if (!chained) {
        if (out.receiver == "this") {
          out.receiver_type = fn.klass;
        } else {
          out.receiver_type = type_of(fn, locals, out.receiver);
        }
      }
    }
  } else if (i >= 2 && punct(t[i - 1], "::") && t[i - 2].kind == Tk::kIdent) {
    out.qualified = true;
    out.qualifier = t[i - 2].text;
  }
  return true;
}

std::vector<std::size_t> Resolver::callees(const FunctionDef& fn,
                                           const CallSite& call) const {
  std::vector<std::size_t> out;
  const auto range = index_.by_name.equal_range(call.name);
  const auto collect_for_class = [&](const std::string& key) {
    const std::string suffix = "::" + key;
    for (auto it = range.first; it != range.second; ++it) {
      const std::string& k = index_.funcs[it->second].klass;
      if (k == key ||
          (k.size() > suffix.size() &&
           k.compare(k.size() - suffix.size(), suffix.size(), suffix) == 0)) {
        out.push_back(it->second);
      }
    }
  };
  if (call.has_receiver) {
    if (call.receiver_type.empty() || call.receiver_type == "auto") {
      return out;  // unresolved receiver: no knowledge
    }
    collect_for_class(class_key(call.receiver_type));
    return out;
  }
  if (call.qualified) {
    const std::string key = class_key(call.qualifier);
    if (class_keys_.count(key) != 0) {
      collect_for_class(key);
      return out;
    }
    // Namespace qualification (`kvstore::apply_command`): free functions.
    for (auto it = range.first; it != range.second; ++it) {
      if (index_.funcs[it->second].klass.empty()) out.push_back(it->second);
    }
    return out;
  }
  // Bare call: same-class method first, else free function.
  if (!fn.klass.empty()) {
    collect_for_class(fn.klass);
    if (!out.empty()) return out;
  }
  for (auto it = range.first; it != range.second; ++it) {
    if (index_.funcs[it->second].klass.empty()) out.push_back(it->second);
  }
  return out;
}

}  // namespace hetsim::analyze

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "analyze/checkers.h"
#include "analyze/driver.h"
#include "analyze/index.h"
#include "common/json.h"

namespace fs = std::filesystem;

namespace hetsim::analyze {

namespace {

struct RuleInfo {
  const char* id;
  const char* description;
};

constexpr RuleInfo kRules[] = {
    {"lock-rank",
     "RankedMutex acquisitions must strictly descend the lock hierarchy, "
     "including ranks reachable through callees"},
    {"lock-blocking",
     "no blocking operation (kvstore/fabric traffic, barrier or condition "
     "waits, sleeps, joins, opaque callbacks) while a lock is held"},
    {"status-flow",
     "kvstore Status/Reply, ha WriteResult/ReadResult and runtime JobStatus "
     "values must be consumed, not discarded or left unread"},
    {"determinism-taint",
     "wall-clock, random, thread-id, pointer and unordered-iteration values "
     "must not reach trace events, bench JSON or common::hash inputs"},
    {"naked-mutex",
     "std::mutex family outside src/check/ — use check::RankedMutex"},
    {"raw-thread",
     "std::thread outside src/par/ and src/runtime/ — use par::ThreadPool "
     "or the job runtime"},
    {"nondeterminism",
     "random/wall-clock APIs in src/ break the byte-identical-trace "
     "guarantee"},
    {"float-accounting",
     "float in energy/time accounting directories — accounting is double "
     "end to end"},
    {"direct-store",
     "kvstore::Store access outside src/kvstore/, src/ha/, src/cluster/ — "
     "go through ha::Client / kvstore::Client"},
    {"phase-throw",
     "expect_ok / UnavailableError inside src/runtime/ — phase bodies must "
     "propagate store faults into a typed PhaseResult, never throw past "
     "the PhaseDag"},
    {"pragma-once", "every header carries #pragma once"},
};

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string hex64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

bool wanted_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp";
}

/// Root-relative, '/'-separated path (falls back to the path itself
/// when it does not live under root).
std::string rel_path(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") {
    return file.generic_string();
  }
  return rel.generic_string();
}

/// Translation units named by compile_commands.json, resolved against
/// each entry's "directory".
std::vector<fs::path> db_files(const std::string& db_path) {
  std::ifstream in(db_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read compile database: " + db_path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const common::JsonValue doc = common::parse_json(buf.str());
  std::vector<fs::path> out;
  for (const common::JsonValue& entry : doc.as_array("compile_commands")) {
    const common::JsonValue* file = entry.find("file");
    if (file == nullptr || !file->is_string()) continue;
    fs::path p(file->string);
    if (p.is_relative()) {
      const common::JsonValue* dir = entry.find("directory");
      if (dir != nullptr && dir->is_string()) p = fs::path(dir->string) / p;
    }
    out.push_back(p.lexically_normal());
  }
  return out;
}

struct Corpus {
  std::vector<SourceFile> files;
  int errors = 0;
};

Corpus load_corpus(const Options& opts) {
  const fs::path root = fs::path(opts.root).lexically_normal();
  std::vector<std::string> dirs = opts.dirs;
  if (dirs.empty()) dirs = {"src", "tools"};

  std::set<std::string> seen;
  std::vector<std::pair<std::string, fs::path>> picked;  // rel -> path
  const auto add = [&](const fs::path& p) {
    if (!wanted_source(p)) return;
    const std::string rel = rel_path(p, root);
    // Fixture corpora are analyzed via --self-test only, never as part
    // of the gate scan (root-relative check, so self-test roots that
    // themselves live under a */fixtures/ directory still scan).
    if (rel.find("fixtures") != std::string::npos) return;
    bool in_scope = false;
    for (const std::string& d : dirs) {
      if (d == "." || rel.rfind(d + "/", 0) == 0) in_scope = true;
    }
    if (!in_scope || !seen.insert(rel).second) return;
    picked.emplace_back(rel, p);
  };

  // Compile-database TUs first (ensures every built .cpp is covered),
  // then walk the scan roots for headers and any stray sources.
  if (!opts.compile_commands.empty()) {
    for (const fs::path& p : db_files(opts.compile_commands)) add(p);
  }
  for (const std::string& d : dirs) {
    const fs::path dir = d == "." ? root : root / d;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file()) add(entry.path());
    }
  }
  std::sort(picked.begin(), picked.end());

  Corpus corpus;
  for (const auto& [rel, path] : picked) {
    SourceFile file;
    if (!load_source(path.string(), rel, file)) {
      std::cerr << "hetsim_analyze: cannot read " << path.string() << "\n";
      ++corpus.errors;
      continue;
    }
    corpus.files.push_back(std::move(file));
  }
  return corpus;
}

std::vector<Finding> analyze(const Index& index) {
  std::vector<Finding> findings;
  check_locks(index, findings);
  check_status(index, findings);
  check_taint(index, findings);
  check_lint_rules(index, findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.rel, a.line, a.rule, a.message) <
                     std::tie(b.rel, b.line, b.rule, b.message);
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.rel == b.rel && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

/// Drop findings suppressed by an allow(...) directive on their line.
void apply_suppressions(const Index& index, std::vector<Finding>& findings) {
  std::map<std::string, const SourceFile*> by_rel;
  for (const SourceFile& f : index.files) by_rel[f.rel] = &f;
  std::erase_if(findings, [&](const Finding& f) {
    const auto it = by_rel.find(f.rel);
    return it != by_rel.end() && it->second->allowed(f.line, f.rule);
  });
}

std::string fingerprint(const Index& index, const Finding& f) {
  std::string line_text;
  for (const SourceFile& file : index.files) {
    if (file.rel != f.rel) continue;
    if (f.line >= 1 && static_cast<std::size_t>(f.line) <= file.lines.size()) {
      line_text = trim(file.lines[static_cast<std::size_t>(f.line) - 1]);
    }
    break;
  }
  return f.rule + "|" + f.rel + "|" + hex64(stable_hash(line_text));
}

std::set<std::string> read_baseline(const std::string& path) {
  std::set<std::string> out;
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read baseline: " + path);
  }
  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (!line.empty() && line[0] != '#') out.insert(line);
  }
  return out;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  common::JsonWriter w;
  w.begin_object();
  w.field("version", "2.1.0");
  w.field("$schema",
          "https://json.schemastore.org/sarif-2.1.0.json");
  w.key("runs").begin_array().begin_object();
  w.key("tool").begin_object().key("driver").begin_object();
  w.field("name", "hetsim_analyze");
  w.field("informationUri", "DESIGN.md");
  w.key("rules").begin_array();
  for (const RuleInfo& rule : kRules) {
    w.begin_object();
    w.field("id", rule.id);
    w.key("shortDescription").begin_object();
    w.field("text", rule.description);
    w.end_object();
    w.end_object();
  }
  w.end_array();          // rules
  w.end_object();         // driver
  w.end_object();         // tool
  w.key("results").begin_array();
  for (const Finding& f : findings) {
    w.begin_object();
    w.field("ruleId", f.rule);
    w.field("level", "error");
    w.key("message").begin_object().field("text", f.message).end_object();
    w.key("locations").begin_array().begin_object();
    w.key("physicalLocation").begin_object();
    w.key("artifactLocation").begin_object();
    w.field("uri", f.rel);
    w.end_object();  // artifactLocation
    w.key("region").begin_object().field("startLine", f.line).end_object();
    w.end_object();  // physicalLocation
    w.end_object();  // location
    w.end_array();   // locations
    w.end_object();  // result
  }
  w.end_array();   // results
  w.end_object();  // run
  w.end_array();   // runs
  w.end_object();
  return w.str() + "\n";
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "hetsim_analyze: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

int self_test(const Options& opts) {
  Options fixture_opts = opts;
  fixture_opts.root = opts.self_test_dir;
  fixture_opts.dirs = {"."};
  fixture_opts.compile_commands.clear();
  Corpus corpus = load_corpus(fixture_opts);
  if (corpus.errors != 0 || corpus.files.empty()) {
    std::cerr << "hetsim_analyze: self-test corpus unreadable or empty: "
              << opts.self_test_dir << "\n";
    return 2;
  }
  const Index index = build_index(std::move(corpus.files));
  std::vector<Finding> findings = analyze(index);
  apply_suppressions(index, findings);

  // Every expect must be hit by a finding, and every finding must be
  // expected — an unexpected finding means a false-positive trap fired.
  int failures = 0;
  std::set<std::size_t> matched;
  for (const SourceFile& file : index.files) {
    for (const auto& [line, rules] : file.expects) {
      for (const std::string& rule : rules) {
        bool hit = false;
        for (std::size_t i = 0; i < findings.size(); ++i) {
          const Finding& f = findings[i];
          if (f.rel == file.rel && f.line == line && f.rule == rule) {
            matched.insert(i);
            hit = true;
          }
        }
        if (!hit) {
          std::cerr << "self-test: MISSED expected finding " << file.rel
                    << ":" << line << " [" << rule << "]\n";
          ++failures;
        }
      }
    }
  }
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (matched.count(i) != 0) continue;
    const Finding& f = findings[i];
    std::cerr << "self-test: UNEXPECTED finding (false-positive trap "
                 "fired) "
              << f.rel << ":" << f.line << " [" << f.rule << "] "
              << f.message << "\n";
    ++failures;
  }

  if (!opts.golden_sarif.empty()) {
    const std::string sarif = to_sarif(findings);
    std::ifstream in(opts.golden_sarif, std::ios::binary);
    std::ostringstream buf;
    if (in) buf << in.rdbuf();
    if (!in) {
      std::cerr << "self-test: cannot read golden SARIF "
                << opts.golden_sarif << "\n";
      ++failures;
    } else if (buf.str() != sarif) {
      std::cerr << "self-test: SARIF output differs from golden "
                << opts.golden_sarif << " (regenerate with --sarif after "
                << "reviewing the diff)\n";
      ++failures;
    }
  }
  if (!opts.sarif.empty() && !write_file(opts.sarif, to_sarif(findings))) {
    return 2;
  }
  if (failures != 0) {
    std::cerr << "hetsim_analyze self-test: " << failures << " failure(s)\n";
    return 1;
  }
  std::cout << "hetsim_analyze self-test: OK (" << findings.size()
            << " expected findings across " << index.files.size()
            << " fixtures, no false positives)\n";
  return 0;
}

}  // namespace

int run(const Options& options) {
  if (options.list_rules) {
    for (const RuleInfo& rule : kRules) {
      std::cout << rule.id << "\n    " << rule.description << "\n";
    }
    return 0;
  }
  if (!options.self_test_dir.empty()) return self_test(options);

  Corpus corpus;
  try {
    corpus = load_corpus(options);
  } catch (const std::exception& e) {
    std::cerr << "hetsim_analyze: " << e.what() << "\n";
    return 2;
  }
  if (corpus.errors != 0) return 2;
  if (corpus.files.empty()) {
    std::cerr << "hetsim_analyze: no sources found under " << options.root
              << "\n";
    return 2;
  }
  const std::size_t file_count = corpus.files.size();
  const Index index = build_index(std::move(corpus.files));
  std::vector<Finding> findings = analyze(index);
  apply_suppressions(index, findings);

  if (!options.write_baseline.empty()) {
    std::string content =
        "# hetsim_analyze baseline — one fingerprint per accepted legacy\n"
        "# finding (rule|path|hash-of-line). Keep this file empty: fix\n"
        "# findings instead of baselining them whenever possible.\n";
    std::set<std::string> prints;
    for (const Finding& f : findings) prints.insert(fingerprint(index, f));
    for (const std::string& p : prints) content += p + "\n";
    if (!write_file(options.write_baseline, content)) return 2;
  }

  std::size_t baselined = 0;
  if (!options.baseline.empty()) {
    std::set<std::string> baseline;
    try {
      baseline = read_baseline(options.baseline);
    } catch (const std::exception& e) {
      std::cerr << "hetsim_analyze: " << e.what() << "\n";
      return 2;
    }
    const std::size_t before = findings.size();
    std::erase_if(findings, [&](const Finding& f) {
      return baseline.count(fingerprint(index, f)) != 0;
    });
    baselined = before - findings.size();
  }

  if (!options.sarif.empty() &&
      !write_file(options.sarif, to_sarif(findings))) {
    return 2;
  }

  for (const Finding& f : findings) {
    std::cerr << f.rel << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "hetsim_analyze: " << findings.size()
              << " finding(s) across " << file_count << " file(s)";
    if (baselined != 0) std::cerr << " (+" << baselined << " baselined)";
    std::cerr << "\n";
    return 1;
  }
  std::cout << "hetsim_analyze: OK (" << file_count << " files clean";
  if (baselined != 0) std::cout << ", " << baselined << " baselined";
  std::cout << ")\n";
  return 0;
}

}  // namespace hetsim::analyze

// hetsim_analyze — source model: raw lines, comment directives and the
// token stream every checker walks.
//
// The lexer is a real (if small) C++ tokenizer: it understands line and
// block comments, string/char literals (raw strings included),
// preprocessor lines (skipped wholesale so macro bodies cannot corrupt
// brace tracking) and multi-char operators the checkers care about
// ("::", "->"). Comments are not discarded blindly: suppression
// directives (`hetsim-analyze: allow(rule)`, plus the legacy
// `hetsim-lint: allow(rule)` spelling) and fixture expectations
// (`expect: rule`) are harvested per line before the text is dropped.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace hetsim::analyze {

enum class Tk : unsigned char {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (value unused)
  kString,  // string literal (content blanked)
  kChar,    // char literal
  kPunct,   // operators / punctuation; "::" and "->" are single tokens
};

struct Token {
  Tk kind = Tk::kPunct;
  std::string text;
  int line = 0;
};

struct SourceFile {
  std::string path;  // as opened (absolute or driver-relative)
  std::string rel;   // root-relative, '/'-separated — used in reports
  std::vector<std::string> lines;
  std::vector<Token> tokens;
  /// line -> rules suppressed on that line via allow(...) directives.
  std::map<int, std::set<std::string>> allows;
  /// line -> rules a fixture expects to fire there (`// expect: rule`).
  std::map<int, std::vector<std::string>> expects;

  [[nodiscard]] bool allowed(int line, std::string_view rule) const {
    const auto it = allows.find(line);
    return it != allows.end() &&
           it->second.count(std::string(rule)) != 0;
  }
};

/// Tokenize `text` into `file` (fills tokens/allows/expects; `lines`
/// must already be populated by the caller).
void lex(std::string_view text, SourceFile& file);

/// Load + lex one file. Returns false when unreadable.
[[nodiscard]] bool load_source(const std::string& path,
                               const std::string& rel, SourceFile& out);

/// True when `rel` lives under `dir` ("src/check" matches
/// "src/check/x.h" but not "src/checker/x.h").
[[nodiscard]] bool in_dir(std::string_view rel, std::string_view dir);

/// Index of the matching '}' for the '{' at `open` (or tokens.size()).
[[nodiscard]] std::size_t match_brace(const std::vector<Token>& tokens,
                                      std::size_t open);

/// Index of the matching ')' for the '(' at `open` (or tokens.size()).
[[nodiscard]] std::size_t match_paren(const std::vector<Token>& tokens,
                                      std::size_t open);

/// FNV-1a 64-bit over `s` — stable fingerprint for baseline entries.
[[nodiscard]] std::uint64_t stable_hash(std::string_view s);

}  // namespace hetsim::analyze

#include <algorithm>

#include "analyze/index.h"

namespace hetsim::analyze {

namespace {

bool is_punct(const Token& t, const char* s) {
  return t.kind == Tk::kPunct && t.text == s;
}

bool is_ident(const Token& t, const char* s) {
  return t.kind == Tk::kIdent && t.text == s;
}

const std::set<std::string> kNotFunctionNames = {
    "if",       "for",     "while",  "switch",   "catch",  "return",
    "sizeof",   "new",     "delete", "alignof",  "decltype",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "noexcept", "requires", "operator", "alignas", "throw", "assert",
    "defined"};

struct Scope {
  enum class Kind { kNamespace, kClass } kind;
  std::string name;
  std::size_t close;  // token index of the matching '}'
};

/// Walk back from `at` (exclusive) collecting a qualified-ident chain
/// `A::B::name`; returns the first token index of the chain.
std::size_t chain_begin(const std::vector<Token>& toks, std::size_t at) {
  std::size_t i = at;  // toks[at] is the terminal ident
  while (i >= 2 && is_punct(toks[i - 1], "::") &&
         toks[i - 2].kind == Tk::kIdent) {
    i -= 2;
  }
  return i;
}

std::string join(const std::vector<Token>& toks, std::size_t b,
                 std::size_t e) {
  std::string out;
  for (std::size_t i = b; i < e; ++i) {
    if (!out.empty()) out.push_back(' ');
    out += toks[i].text;
  }
  return out;
}

class Builder {
 public:
  explicit Builder(Index& index) : index_(index) {
    // Canonical hierarchy (check/ranked_mutex.h); overridden by any
    // `enum class LockRank` found in the file set so the table cannot
    // silently drift.
    index_.lock_ranks = {{"kScheduler", 100}, {"kTrace", 200},
                         {"kHa", 250},        {"kStore", 300},
                         {"kFault", 350},     {"kParPool", 400}};
  }

  void scan_file(int file_id) {
    const SourceFile& f = index_.files[file_id];
    const std::vector<Token>& t = f.tokens;
    scopes_.clear();
    std::size_t i = 0;
    while (i < t.size()) {
      while (!scopes_.empty() && i >= scopes_.back().close) {
        scopes_.pop_back();
      }
      if (is_ident(t[i], "namespace")) {
        i = enter_namespace(t, i);
        continue;
      }
      if (is_ident(t[i], "enum")) {
        i = scan_enum(t, i);
        continue;
      }
      if (is_ident(t[i], "using")) {
        i = scan_using(t, i);
        continue;
      }
      if ((is_ident(t[i], "class") || is_ident(t[i], "struct")) &&
          !(i > 0 && is_ident(t[i - 1], "enum"))) {
        i = enter_class(t, i);
        continue;
      }
      if (is_punct(t[i], "(") && i > 0 && t[i - 1].kind == Tk::kIdent &&
          kNotFunctionNames.count(t[i - 1].text) == 0) {
        const std::size_t next = try_function(file_id, t, i);
        if (next != 0) {
          i = next;
          continue;
        }
      }
      if (is_punct(t[i], "{") && i > 0 &&
          (t[i - 1].kind == Tk::kIdent || is_punct(t[i - 1], "=") ||
           is_punct(t[i - 1], ">") || is_punct(t[i - 1], "]") ||
           is_punct(t[i - 1], ")"))) {
        // Brace initializer (member/global `x{...}`, `= {...}`, lambda
        // body in an initializer): part of the statement, not a scope.
        // Skip it whole so the ';' handler sees the full declaration —
        // resetting here would hide `RankedMutex mu_{LockRank::kX}`
        // ranks from the mutex registry.
        i = match_brace(t, i) + 1;
        continue;
      }
      if (is_punct(t[i], ";")) {
        scan_declaration(t, stmt_begin_, i);
        stmt_begin_ = i + 1;
      }
      if (is_punct(t[i], "{") || is_punct(t[i], "}")) stmt_begin_ = i + 1;
      ++i;
    }
  }

 private:
  std::string current_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return it->name;
    }
    return "";
  }

  std::string qualify(const std::string& name) const {
    std::string out;
    for (const Scope& s : scopes_) {
      if (s.name.empty()) continue;
      out += s.name + "::";
    }
    return out + name;
  }

  std::size_t enter_namespace(const std::vector<Token>& t, std::size_t i) {
    std::size_t j = i + 1;
    std::string name;
    while (j < t.size() &&
           (t[j].kind == Tk::kIdent || is_punct(t[j], "::"))) {
      name += t[j].text;
      ++j;
    }
    if (j < t.size() && is_punct(t[j], "{")) {
      scopes_.push_back(
          {Scope::Kind::kNamespace, name, match_brace(t, j)});
      stmt_begin_ = j + 1;
      return j + 1;
    }
    return j;  // `using namespace`, alias, or malformed — skip keyword
  }

  std::size_t scan_enum(const std::vector<Token>& t, std::size_t i) {
    // enum [class] NAME [: base] { k = v, ... };  — only LockRank matters.
    std::size_t j = i + 1;
    if (j < t.size() && (is_ident(t[j], "class") || is_ident(t[j], "struct")))
      ++j;
    const std::string name = j < t.size() && t[j].kind == Tk::kIdent
                                 ? t[j].text
                                 : std::string();
    while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";")) ++j;
    if (j >= t.size() || is_punct(t[j], ";")) return j + 1;
    const std::size_t close = match_brace(t, j);
    if (name == "LockRank") {
      for (std::size_t k = j + 1; k + 2 < close; ++k) {
        if (t[k].kind == Tk::kIdent && is_punct(t[k + 1], "=") &&
            t[k + 2].kind == Tk::kNumber) {
          index_.lock_ranks[t[k].text] = std::stoi(t[k + 2].text);
        }
      }
    }
    return close + 1;
  }

  std::size_t scan_using(const std::vector<Token>& t, std::size_t i) {
    // using NAME = ... function < ... > ;
    if (i + 2 < t.size() && t[i + 1].kind == Tk::kIdent &&
        is_punct(t[i + 2], "=")) {
      std::size_t j = i + 3;
      bool callable = false;
      while (j < t.size() && !is_punct(t[j], ";")) {
        if (is_ident(t[j], "function")) callable = true;
        ++j;
      }
      if (callable) index_.callable_aliases.insert(t[i + 1].text);
      return j + 1;
    }
    std::size_t j = i + 1;
    while (j < t.size() && !is_punct(t[j], ";")) ++j;
    return j + 1;
  }

  std::size_t enter_class(const std::vector<Token>& t, std::size_t i) {
    // class [macro(...)] NAME [final] [: bases] { ... }  |  class NAME ;
    std::size_t j = i + 1;
    std::string name;
    while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";") &&
           !(is_punct(t[j], ":"))) {
      if (t[j].kind == Tk::kIdent) {
        if (is_punct(t[j - 1], "::") && !name.empty()) {
          name += "::" + t[j].text;
        } else if (t[j].text != "final" &&
                   !(j + 1 < t.size() && is_punct(t[j + 1], "("))) {
          name = t[j].text;  // last plain ident wins (skips attr macros)
        }
      }
      if (is_punct(t[j], "(")) j = match_paren(t, j);  // attr macro args
      ++j;
    }
    // skip base clause
    while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";")) ++j;
    if (j >= t.size() || is_punct(t[j], ";")) return j + 1;  // fwd decl
    scopes_.push_back({Scope::Kind::kClass, name, match_brace(t, j)});
    stmt_begin_ = j + 1;
    return j + 1;
  }

  /// Token at `open` is '(' preceded by an ident. Returns the index to
  /// resume from (past the body) when this is a function definition,
  /// 0 otherwise.
  std::size_t try_function(int file_id, const std::vector<Token>& t,
                           std::size_t open) {
    const std::size_t name_at = open - 1;
    const std::size_t chain = chain_begin(t, name_at);
    const std::size_t close = match_paren(t, open);
    if (close >= t.size()) return 0;
    // Scan past qualifiers / ctor-init list to find the body '{'.
    std::size_t j = close + 1;
    bool in_init = false;
    std::size_t body = 0;
    while (j < t.size()) {
      const Token& tok = t[j];
      if (tok.kind == Tk::kPunct) {
        if (tok.text == ";" || tok.text == "=" || tok.text == "," ||
            tok.text == ")" || tok.text == "}") {
          return 0;  // declaration, default/delete, or expression
        }
        if (tok.text == ":") {
          in_init = true;
          ++j;
          continue;
        }
        if (tok.text == "(") {
          j = match_paren(t, j) + 1;
          continue;
        }
        if (tok.text == "{") {
          if (in_init && j > 0 &&
              (t[j - 1].kind == Tk::kIdent || is_punct(t[j - 1], ">"))) {
            j = match_brace(t, j) + 1;  // member-init braces
            continue;
          }
          body = j;
          break;
        }
      }
      ++j;
    }
    if (body == 0) return 0;

    FunctionDef fn;
    fn.file = file_id;
    fn.name = t[name_at].text;
    fn.line = t[name_at].line;
    fn.params_begin = open;
    fn.params_end = close;
    fn.body_begin = body;
    fn.body_end = match_brace(t, body);
    // Explicit qualification (out-of-class definition) overrides scope.
    if (chain < name_at) {
      std::string k;
      for (std::size_t q = chain; q < name_at - 1; ++q) {
        if (t[q].kind == Tk::kIdent) {
          if (!k.empty()) k += "::";
          k += t[q].text;
        }
      }
      fn.klass = k;
    } else {
      fn.klass = current_class();
    }
    fn.qual = qualify(fn.klass.empty() ? fn.name : fn.klass + "::" + fn.name);
    // Return type: the statement tokens before the name chain.
    std::size_t ret_begin = stmt_begin_;
    if (ret_begin < chain) fn.ret = join(t, ret_begin, chain);
    index_.by_name.emplace(fn.name, index_.funcs.size());
    index_.funcs.push_back(fn);
    stmt_begin_ = fn.body_end + 1;
    return fn.body_end + 1;
  }

  /// Statement [begin, semi) at class/namespace scope that is not a
  /// function definition: record data members and mutex declarations.
  void scan_declaration(const std::vector<Token>& t, std::size_t begin,
                        std::size_t semi) {
    if (begin >= semi) return;
    const std::string klass = current_class();
    // Find the declared name: last ident before ';', '=', '{' or '('
    // at template-argument depth zero ('(' inside `std::function<void()>`
    // is part of the type, not a declarator).
    std::size_t name_at = semi;
    std::size_t paren_at = semi;
    int angle = 0;
    for (std::size_t i = begin; i < semi; ++i) {
      if (is_punct(t[i], "<") && i > begin && t[i - 1].kind == Tk::kIdent) {
        ++angle;
      } else if (is_punct(t[i], ">") && angle > 0) {
        --angle;
        continue;
      }
      if (angle > 0) continue;
      if (is_punct(t[i], "{") || is_punct(t[i], "=")) {
        name_at = i;
        break;
      }
      if (is_punct(t[i], "(")) {
        paren_at = i;
        break;
      }
    }
    std::size_t end = std::min(name_at, paren_at);
    // Walk back from `end` to the declared ident.
    std::size_t di = end;
    while (di > begin && t[di - 1].kind != Tk::kIdent) --di;
    if (di == begin) return;
    const std::size_t name_idx = di - 1;
    const std::string name = t[name_idx].text;
    if (paren_at != semi && name_idx + 1 == paren_at &&
        kNotFunctionNames.count(name) == 0) {
      return;  // method declaration — no body, nothing to record
    }
    // Type = tokens before the name; terminal = last type ident at
    // template depth zero (`std::function<void()> f_` -> "function",
    // not "void").
    std::string terminal;
    int tangle = 0;
    for (std::size_t i = begin; i < name_idx; ++i) {
      if (is_punct(t[i], "<") && i > begin && t[i - 1].kind == Tk::kIdent) {
        ++tangle;
        continue;
      }
      if (is_punct(t[i], ">") && tangle > 0) {
        --tangle;
        continue;
      }
      if (tangle > 0) continue;
      if (t[i].kind == Tk::kIdent && t[i].text != "mutable" &&
          t[i].text != "static" && t[i].text != "const" &&
          t[i].text != "constexpr" && t[i].text != "inline") {
        terminal = t[i].text;
      }
    }
    if (terminal.empty()) return;
    MemberDecl decl;
    decl.type_terminal = terminal;
    decl.type_full = join(t, begin, name_idx);
    index_.members[klass][name] = decl;
    // RankedMutex member: pull the rank out of the initializer.
    bool is_mutex = false;
    for (std::size_t i = begin; i < name_idx; ++i) {
      if (is_ident(t[i], "RankedMutex")) is_mutex = true;
    }
    if (is_mutex) {
      for (std::size_t i = name_idx; i + 2 < semi; ++i) {
        if (is_ident(t[i], "LockRank") && is_punct(t[i + 1], "::")) {
          const auto it = index_.lock_ranks.find(t[i + 2].text);
          if (it != index_.lock_ranks.end()) {
            index_.mutexes[klass][name] = it->second;
          }
        }
      }
    }
  }

  Index& index_;
  std::vector<Scope> scopes_;
  std::size_t stmt_begin_ = 0;
};

}  // namespace

int Index::mutex_rank(const std::string& klass,
                      const std::string& name) const {
  const auto kit = mutexes.find(klass);
  if (kit != mutexes.end()) {
    const auto mit = kit->second.find(name);
    if (mit != kit->second.end()) return mit->second;
  }
  // Unique cross-class fallback (covers `s.mu` style access where the
  // receiver class was resolved, and file-local globals under "").
  int found = -1;
  int hits = 0;
  for (const auto& [k, m] : mutexes) {
    const auto mit = m.find(name);
    if (mit != m.end()) {
      found = mit->second;
      ++hits;
    }
  }
  return hits == 1 ? found : -1;
}

const MemberDecl* Index::member(const std::string& klass,
                                const std::string& name) const {
  const auto kit = members.find(klass);
  if (kit == members.end()) return nullptr;
  const auto mit = kit->second.find(name);
  return mit == kit->second.end() ? nullptr : &mit->second;
}

Index build_index(std::vector<SourceFile> files) {
  Index index;
  index.files = std::move(files);
  Builder builder(index);
  for (std::size_t i = 0; i < index.files.size(); ++i) {
    builder.scan_file(static_cast<int>(i));
  }
  return index;
}

}  // namespace hetsim::analyze

// hetsim_analyze — checker entry points and the Finding model shared by
// the driver, the baseline store and the SARIF writer.
#pragma once

#include <string>
#include <vector>

#include "analyze/index.h"

namespace hetsim::analyze {

struct Finding {
  std::string rule;  // "lock-rank", "status-flow", ...
  std::string rel;   // root-relative path
  int line = 0;
  std::string message;
};

/// lock-rank + lock-blocking: propagate held RankedMutex sets through
/// guard scopes and the resolved call graph; report acquisitions that
/// violate the rank order and blocking operations made under a lock.
void check_locks(const Index& index, std::vector<Finding>& out);

/// status-flow: kvstore::Status / Reply / WriteResult / ReadResult
/// values must be consumed — discarded producer calls and locals that
/// reach end of scope untouched are reported.
void check_status(const Index& index, std::vector<Finding>& out);

/// determinism-taint: wall-clock / rand / pointer-hash / thread-id /
/// unordered-iteration values must not reach trace events, bench JSON
/// or common::hash inputs (sorting sanitizes).
void check_taint(const Index& index, std::vector<Finding>& out);

/// Token-level rules absorbed from tools/hetsim_lint (naked-mutex,
/// raw-thread, nondeterminism, float-accounting, direct-store,
/// pragma-once) — applied to src/ (pragma-once also to tools/ headers).
void check_lint_rules(const Index& index, std::vector<Finding>& out);

}  // namespace hetsim::analyze

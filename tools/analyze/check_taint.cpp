// determinism-taint — keep nondeterministic values out of
// determinism-sensitive outputs.
//
// Sources: wall clocks, random generators, thread ids, host
// parallelism, pointer values (reinterpret_cast<uintptr_t>) and the
// iteration order of unordered containers. Taint propagates through
// assignments, initializers and container push_back/insert; sorting a
// container sanitizes it (order no longer host-dependent). Sinks are
// the reproducibility-bearing outputs: TraceRecorder events, bench
// JSON, summaries and the common::hash helpers.
//
// Functions whose return value derives from a source are themselves
// sources at their call sites (two analysis rounds: round one learns
// which functions return taint, round two reports with that knowledge).
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analyze/checkers.h"
#include "analyze/walk.h"

namespace hetsim::analyze {

namespace {

const std::map<std::string, std::string> kSourceIdents = {
    {"system_clock", "wall clock"},
    {"steady_clock", "wall clock"},
    {"high_resolution_clock", "wall clock"},
    {"random_device", "hardware randomness"},
    {"rand", "rand()"},
    {"srand", "rand()"},
    {"drand48", "drand48()"},
    {"gettimeofday", "wall clock"},
    {"clock_gettime", "wall clock"},
    {"timespec_get", "wall clock"},
    {"get_id", "thread id"},
    {"hardware_concurrency", "host parallelism"}};

const std::set<std::string> kSinks = {
    "add_span",   "add_instant",    "add_counter", "name_lane",
    "write_bench_json", "hash_bytes", "hash_combine", "hash_u64",
    "mix64",      "summary_json"};

const std::set<std::string> kAppend = {"push_back", "insert", "emplace_back",
                                       "emplace"};

bool punct(const Token& t, const char* s) {
  return t.kind == Tk::kPunct && t.text == s;
}

class TaintWalker {
 public:
  TaintWalker(const Resolver& resolver,
              const std::set<std::size_t>& returns_taint)
      : r_(resolver), idx_(resolver.index()), returns_taint_(returns_taint) {}

  /// Walk one function; report into `out` when non-null; returns true
  /// when the function's return value derives from a source.
  bool walk(std::size_t fid, std::vector<Finding>* out) {
    fn_ = &idx_.funcs[fid];
    file_ = &idx_.files[fn_->file];
    const std::vector<Token>& t = file_->tokens;
    locals_ = r_.collect_locals(*fn_);
    tainted_.clear();
    bool returns_tainted = false;

    std::size_t stmt = fn_->body_begin + 1;
    for (std::size_t i = fn_->body_begin + 1; i < fn_->body_end; ++i) {
      if (t[i].kind == Tk::kIdent && t[i].text == "for" && i + 1 < t.size() &&
          punct(t[i + 1], "(")) {
        handle_range_for(i + 1);
        continue;
      }
      if (t[i].kind == Tk::kIdent && i + 1 < t.size() && punct(t[i + 1], "(")) {
        handle_call(i, out);
      }
      if (punct(t[i], ";") || punct(t[i], "{") || punct(t[i], "}")) {
        stmt = i + 1;
        continue;
      }
      // Top-level assignment / initialization: taint flows rhs -> lhs.
      if (punct(t[i], "=") && i > stmt &&
          !(i + 1 < t.size() && punct(t[i + 1], "=")) &&
          !punct(t[i - 1], "=") && !punct(t[i - 1], "!") &&
          !punct(t[i - 1], "<") && !punct(t[i - 1], ">")) {
        std::size_t lhs = i;
        while (lhs > stmt && t[lhs - 1].kind == Tk::kPunct &&
               t[lhs - 1].text != ";" && t[lhs - 1].text != "{") {
          --lhs;
        }
        if (lhs > stmt && t[lhs - 1].kind != Tk::kIdent) continue;
        if (lhs == stmt) continue;
        const std::string dest = t[lhs - 1].text;
        std::size_t end = i + 1;
        int nest = 0;
        while (end < fn_->body_end) {
          if (punct(t[end], "(")) ++nest;
          if (punct(t[end], ")")) --nest;
          if (punct(t[end], ";") && nest == 0) break;
          ++end;
        }
        std::string origin;
        if (span_origin(i + 1, end, &origin)) {
          tainted_[dest] = origin;
        }
      }
      if (t[i].kind == Tk::kIdent && t[i].text == "return") {
        std::size_t end = i + 1;
        while (end < fn_->body_end && !punct(t[end], ";")) ++end;
        std::string origin;
        if (span_origin(i + 1, end, &origin)) returns_tainted = true;
      }
    }
    return returns_tainted;
  }

 private:
  /// Taint origin of any source / tainted ident in [b, e), else "".
  bool span_origin(std::size_t b, std::size_t e, std::string* origin) {
    const std::vector<Token>& t = file_->tokens;
    for (std::size_t i = b; i < e && i < t.size(); ++i) {
      if (t[i].kind != Tk::kIdent) continue;
      const auto src = kSourceIdents.find(t[i].text);
      if (src != kSourceIdents.end()) {
        *origin = src->second;
        return true;
      }
      // std::time(nullptr)
      if (t[i].text == "time" && i >= 2 && punct(t[i - 1], "::") &&
          t[i - 2].kind == Tk::kIdent && t[i - 2].text == "std") {
        *origin = "wall clock";
        return true;
      }
      if (t[i].text == "reinterpret_cast" && i + 2 < t.size() &&
          punct(t[i + 1], "<") &&
          (t[i + 2].text == "uintptr_t" || t[i + 2].text == "intptr_t")) {
        *origin = "pointer value";
        return true;
      }
      const auto taint = tainted_.find(t[i].text);
      if (taint != tainted_.end()) {
        *origin = taint->second;
        return true;
      }
      // Calls to functions known to return taint.
      if (i + 1 < t.size() && punct(t[i + 1], "(")) {
        CallSite call;
        if (r_.parse_call(*fn_, locals_, i, call)) {
          for (const std::size_t c : r_.callees(*fn_, call)) {
            if (returns_taint_.count(c) != 0) {
              *origin = "value of '" + call.name + "' (returns taint)";
              return true;
            }
          }
        }
      }
    }
    return false;
  }

  void handle_range_for(std::size_t open) {
    const std::vector<Token>& t = file_->tokens;
    const std::size_t close = match_paren(t, open);
    std::size_t colon = 0;
    int nest = 0;
    for (std::size_t i = open + 1; i < close; ++i) {
      if (punct(t[i], "(") || punct(t[i], "[") || punct(t[i], "{")) ++nest;
      if (punct(t[i], ")") || punct(t[i], "]") || punct(t[i], "}")) --nest;
      if (punct(t[i], ":") && nest == 0) {
        colon = i;
        break;
      }
    }
    if (colon == 0) return;
    // Container: last ident of the range expression.
    std::size_t ce = close;
    while (ce > colon && t[ce - 1].kind != Tk::kIdent) --ce;
    if (ce == colon) return;
    const std::string cont = t[ce - 1].text;
    std::string origin;
    const auto it = tainted_.find(cont);
    if (it != tainted_.end()) {
      origin = it->second;
    } else {
      // Declared unordered container => iteration order is taint.
      std::string full;
      const auto lit = locals_.find(cont);
      if (lit != locals_.end()) full = lit->second;
      if (const MemberDecl* m = idx_.member(fn_->klass, cont)) {
        full = m->type_full;
      }
      if (full.find("unordered") == std::string::npos) return;
      origin = "iteration order of unordered container '" + cont + "'";
    }
    // Loop variables: idents between '(' and ':' that are declared
    // there (last ident, or every ident inside a structured binding).
    std::vector<std::string> vars;
    bool binding = false;
    for (std::size_t i = open + 1; i < colon; ++i) {
      if (punct(t[i], "[")) binding = true;
      if (punct(t[i], "]")) binding = false;
      if (t[i].kind == Tk::kIdent && (binding || i + 1 == colon ||
                                      punct(t[i + 1], ":"))) {
        vars.push_back(t[i].text);
      }
    }
    if (vars.empty()) {
      // `for (auto& kv : c)` — kv directly before ':'.
      std::size_t vi = colon;
      while (vi > open && t[vi - 1].kind != Tk::kIdent) --vi;
      if (vi > open) vars.push_back(t[vi - 1].text);
    }
    for (const std::string& v : vars) tainted_[v] = origin;
  }

  void handle_call(std::size_t i, std::vector<Finding>* out) {
    const std::vector<Token>& t = file_->tokens;
    CallSite call;
    if (!r_.parse_call(*fn_, locals_, i, call)) return;
    // Sorting sanitizes a container's order.
    if (call.name == "sort" || call.name == "stable_sort") {
      std::size_t ai = call.open + 1;
      if (ai < t.size() && t[ai].kind == Tk::kIdent) {
        tainted_.erase(t[ai].text);
      }
      return;
    }
    // Appending a tainted value taints the container.
    if (kAppend.count(call.name) != 0 && call.has_receiver &&
        !call.receiver.empty()) {
      std::string origin;
      if (span_origin(call.open + 1, call.close, &origin)) {
        tainted_[call.receiver] = origin;
      }
      return;
    }
    if (kSinks.count(call.name) != 0 && out != nullptr) {
      std::string origin;
      if (span_origin(call.open + 1, call.close, &origin)) {
        out->push_back(
            {"determinism-taint", file_->rel, t[i].line,
             "'" + call.name + "' receives " + origin +
                 "; determinism-sensitive outputs must not depend on it"});
      }
    }
  }

  const Resolver& r_;
  const Index& idx_;
  const std::set<std::size_t>& returns_taint_;
  const FunctionDef* fn_ = nullptr;
  const SourceFile* file_ = nullptr;
  LocalTypes locals_;
  std::map<std::string, std::string> tainted_;
};

}  // namespace

void check_taint(const Index& index, std::vector<Finding>& out) {
  const Resolver resolver(index);
  std::set<std::size_t> returns_taint;
  // Round 1: learn which functions return tainted values.
  {
    TaintWalker walker(resolver, returns_taint);
    for (std::size_t i = 0; i < index.funcs.size(); ++i) {
      if (walker.walk(i, nullptr)) returns_taint.insert(i);
    }
  }
  // Round 2: report with interprocedural knowledge.
  TaintWalker walker(resolver, returns_taint);
  for (std::size_t i = 0; i < index.funcs.size(); ++i) {
    (void)walker.walk(i, &out);
  }
}

}  // namespace hetsim::analyze

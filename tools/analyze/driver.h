// hetsim_analyze — driver: file discovery (compile_commands.json +
// header walk), rule registry, suppression + baseline filtering, text
// and SARIF output, and the fixture self-test mode.
#pragma once

#include <string>
#include <vector>

namespace hetsim::analyze {

struct Options {
  std::string root = ".";            // repo root; rel paths and default dirs
  std::vector<std::string> dirs;     // scan roots under `root`; default src, tools
  std::string compile_commands;      // optional compile_commands.json
  std::string baseline;              // optional baseline file to read
  std::string write_baseline;        // optional baseline file to write
  std::string sarif;                 // optional SARIF 2.1.0 output file
  std::string self_test_dir;         // fixture corpus => self-test mode
  std::string golden_sarif;          // byte-compare SARIF in self-test
  bool list_rules = false;
};

/// Run the analysis. Exit code: 0 clean, 1 findings (or self-test
/// mismatch), 2 usage/environment error.
int run(const Options& options);

}  // namespace hetsim::analyze

// hetsim_analyze — shared function-body walking helpers: local/param
// type collection, receiver resolution and call-graph edge resolution.
//
// Resolution is deliberately conservative: a receiver or callee the
// helpers cannot pin to a declared type resolves to "unknown", and the
// checkers treat unknown as "no knowledge" rather than guessing.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/index.h"

namespace hetsim::analyze {

/// var name -> terminal type ident ("Client", "UniqueLock", "auto", ...).
using LocalTypes = std::map<std::string, std::string>;

/// One `name(...)` site inside a function body.
struct CallSite {
  std::string name;
  std::size_t name_at = 0;  // token index of the name
  std::size_t open = 0;     // '('
  std::size_t close = 0;    // matching ')'
  bool has_receiver = false;  // `x.name(...)` / `x->name(...)`
  std::string receiver;       // receiver ident ("" when not a plain ident)
  std::string receiver_type;  // resolved terminal type ("" = unknown)
  bool qualified = false;     // `X::name(...)`
  std::string qualifier;      // the ident before '::'
};

class Resolver {
 public:
  explicit Resolver(const Index& index);

  const Index& index() const { return index_; }

  /// Map a terminal type ident to a class key used by Index::members /
  /// Index::mutexes / FunctionDef::klass ("State" ->
  /// "PhaseExecutor::State" when unique). Returns `terminal` unchanged
  /// when no better match exists.
  [[nodiscard]] std::string class_key(const std::string& terminal) const;

  /// Collect parameter + local-variable types for `fn`.
  [[nodiscard]] LocalTypes collect_locals(const FunctionDef& fn) const;

  /// Parse the call whose name token is at `i` (tokens[i + 1] must be
  /// '('), resolving the receiver type via `locals` and the enclosing
  /// class's members. Returns false when `i` is not a call-shaped site.
  bool parse_call(const FunctionDef& fn, const LocalTypes& locals,
                  std::size_t i, CallSite& out) const;

  /// Candidate function ids for a parsed call (overload sets merged by
  /// the caller, conservatively). Empty = unresolved.
  [[nodiscard]] std::vector<std::size_t> callees(const FunctionDef& fn,
                                                 const CallSite& call) const;

  /// Terminal type of `name` as seen from `fn`: local/param first, then
  /// enclosing-class member. "" = unknown.
  [[nodiscard]] std::string type_of(const FunctionDef& fn,
                                    const LocalTypes& locals,
                                    const std::string& name) const;

 private:
  const Index& index_;
  std::set<std::string> class_keys_;
};

/// Idents that look like calls but are control flow / casts.
[[nodiscard]] bool is_call_keyword(const std::string& name);

/// Backward from token `at` (exclusive): skip `&` / `*`, then return
/// the terminal type ident — the directly preceding ident, or for a
/// closed template (`...>`), the ident before its '<'. "" when neither
/// (or when the preceding ident is a keyword, not a type).
[[nodiscard]] std::string terminal_before(const std::vector<Token>& tokens,
                                          std::size_t at);

}  // namespace hetsim::analyze

// lock-rank / lock-blocking — flow-aware RankedMutex discipline.
//
// Pass 1 walks every function body collecting (a) the minimum rank it
// acquires directly, (b) whether it directly performs a blocking
// operation (kvstore/fabric traffic, barrier/condition waits, sleeps,
// joins), and (c) its resolved call edges. A fixpoint then propagates
// min-acquired-rank and may-block through the call graph. Pass 2
// re-walks each body tracking the held-lock set through guard scopes,
// explicit lock()/unlock() and condition waits, and reports:
//   lock-rank     — acquiring a rank <= one already held (directly or
//                   via a callee's propagated min rank),
//   lock-blocking — a blocking operation or opaque callback invoked
//                   while any lock is held (a condition wait is fine
//                   when the waited guard is the only lock held).
//
// Invoking an opaque std::function is checked at the call site only —
// it is NOT treated as "blocking" for propagation, because callees that
// receive the caller's UniqueLock (the *_locked convention) drop it
// around callback windows, which a name-level propagation cannot see.
#include <algorithm>
#include <climits>
#include <string>
#include <vector>

#include "analyze/checkers.h"
#include "analyze/walk.h"

namespace hetsim::analyze {

namespace {

constexpr int kInf = INT_MAX;

const std::set<std::string> kGuardTypes = {
    "lock_guard", "unique_lock", "scoped_lock", "LockGuard", "UniqueLock"};

const std::set<std::string> kMutexTypes = {
    "RankedMutex", "mutex",       "recursive_mutex",
    "shared_mutex", "timed_mutex"};

/// Blocking regardless of receiver: simulated network round-trips,
/// queue drains and barrier arrivals.
const std::set<std::string> kAlwaysBlocking = {
    "execute",     "execute_with_faults", "drain",
    "flush_queue", "flush_queue_with_faults", "enqueue",
    "put_many",    "get_many",            "fan_out",
    "read_with_fallback", "arrive_and_wait", "exchange_cost",
    "pipelined_cost"};

/// Blocking only when the receiver resolves to a client-side class
/// (the same names exist as non-blocking Store methods).
const std::set<std::string> kReceiverBlocking = {
    "get",  "set",    "del",    "rpush", "lrange", "llen", "lindex",
    "incrby", "counter", "exists", "wait", "put",  "send", "recv"};

const std::set<std::string> kBlockingReceivers = {"Client", "Barrier",
                                                  "Fabric"};

const std::set<std::string> kSleepy = {"sleep_for", "sleep_until", "join"};

struct FnInfo {
  int min_acq = kInf;
  bool blocking = false;
  std::vector<std::size_t> callees;
};

struct HeldLock {
  std::string guard;  // guard variable ("" for direct mutex .lock())
  std::string mux;    // mutex expression text, for messages
  int rank = -1;      // -1 = unknown
  int depth = 0;      // brace depth of the declaration
  int line = 0;
  bool active = true;
};

bool punct(const Token& t, const char* s) {
  return t.kind == Tk::kPunct && t.text == s;
}

std::string rank_name(const Index& idx, int rank) {
  for (const auto& [name, value] : idx.lock_ranks) {
    if (value == rank) return name + " (" + std::to_string(rank) + ")";
  }
  return "rank " + std::to_string(rank);
}

class LockWalker {
 public:
  LockWalker(const Resolver& resolver, const std::vector<FnInfo>* fixed,
             FnInfo* direct, std::vector<Finding>* out)
      : r_(resolver),
        idx_(resolver.index()),
        fixed_(fixed),
        direct_(direct),
        out_(out) {}

  void walk(std::size_t fid) {
    fn_ = &idx_.funcs[fid];
    file_ = &idx_.files[fn_->file];
    toks_ = &file_->tokens;
    locals_ = r_.collect_locals(*fn_);
    held_.clear();
    depth_ = 0;
    const std::vector<Token>& t = *toks_;
    std::size_t i = fn_->body_begin;
    while (i <= fn_->body_end && i < t.size()) {
      if (punct(t[i], "{")) {
        ++depth_;
        ++i;
        continue;
      }
      if (punct(t[i], "}")) {
        --depth_;
        std::erase_if(held_,
                      [&](const HeldLock& h) { return h.depth > depth_; });
        ++i;
        continue;
      }
      if (punct(t[i], "[")) {
        // A lambda's body does not execute where it is written; walking
        // it under the current held-lock set would flag deferred work
        // (queued tasks, stored callbacks) as blocking-under-lock.
        const std::size_t after = skip_lambda(t, i);
        if (after != 0) {
          i = after;
          continue;
        }
      }
      if (t[i].kind == Tk::kIdent && kGuardTypes.count(t[i].text) != 0) {
        const std::size_t next = try_guard_decl(i);
        if (next != 0) {
          i = next;
          continue;
        }
      }
      if (t[i].kind == Tk::kIdent && i + 1 < t.size() && punct(t[i + 1], "(")) {
        CallSite call;
        if (r_.parse_call(*fn_, locals_, i, call)) {
          handle_call(call);
          // Walk INTO the argument list (nested calls), not past it.
          ++i;
          continue;
        }
      }
      ++i;
    }
  }

 private:
  /// Token i is '['. When it introduces a lambda — `[caps](params){...}`
  /// or `[caps]{...}` — return the index just past the body's '}';
  /// return 0 for subscripts and anything else.
  static std::size_t skip_lambda(const std::vector<Token>& t, std::size_t i) {
    std::size_t j = i;
    int depth = 0;
    while (j < t.size()) {
      if (punct(t[j], "[")) ++depth;
      if (punct(t[j], "]") && --depth == 0) break;
      ++j;
    }
    if (j >= t.size()) return 0;
    ++j;
    if (j < t.size() && punct(t[j], "(")) j = match_paren(t, j) + 1;
    // Specifiers / trailing return type: a short run of idents and
    // type punctuation is allowed before the body brace.
    std::size_t budget = 8;
    while (j < t.size() && budget-- > 0) {
      const Token& tok = t[j];
      if (punct(tok, "{")) return match_brace(t, j) + 1;
      const bool spec =
          tok.kind == Tk::kIdent || punct(tok, "->") || punct(tok, "::") ||
          punct(tok, "<") || punct(tok, ">") || punct(tok, "&") ||
          punct(tok, "*") || punct(tok, ",");
      if (!spec) return 0;
      ++j;
    }
    return 0;
  }

  bool any_held() const {
    return std::any_of(held_.begin(), held_.end(),
                       [](const HeldLock& h) { return h.active; });
  }

  const HeldLock* find_guard(const std::string& var) const {
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      if (it->guard == var) return &*it;
    }
    return nullptr;
  }

  void report(const char* rule, int line, std::string message) {
    if (out_ != nullptr) {
      out_->push_back({rule, file_->rel, line, std::move(message)});
    }
  }

  /// Rank-order check for acquiring `mux` (rank `rank`) at `line`,
  /// then record the acquisition.
  void acquire(std::string guard, std::string mux, int rank, int line) {
    if (rank != -1) {
      for (const HeldLock& h : held_) {
        if (!h.active || h.rank == -1) continue;
        if (rank <= h.rank) {
          report("lock-rank", line,
                 "acquires '" + mux + "' at " + rank_name(idx_, rank) +
                     " while holding '" + h.mux + "' at " +
                     rank_name(idx_, h.rank) +
                     "; ranks must strictly increase down the hierarchy");
        }
      }
      if (direct_ != nullptr) direct_->min_acq = std::min(direct_->min_acq, rank);
    }
    held_.push_back({std::move(guard), std::move(mux), rank, depth_, line, true});
  }

  /// Resolve a mutex expression [b, e) to (text, rank).
  std::pair<std::string, int> resolve_mutex(std::size_t b, std::size_t e) {
    const std::vector<Token>& t = *toks_;
    std::string text;
    for (std::size_t i = b; i < e; ++i) text += t[i].text;
    // Trailing `X . M` / `X -> M` / lone `M`.
    std::size_t m = e;
    while (m > b && t[m - 1].kind != Tk::kIdent) --m;
    if (m == b) return {text, -1};
    const std::string mux = t[m - 1].text;
    if (m >= 3 + b && (punct(t[m - 2], ".") || punct(t[m - 2], "->")) &&
        t[m - 3].kind == Tk::kIdent) {
      const std::string owner = t[m - 3].text;
      const std::string type =
          owner == "this" ? fn_->klass : r_.type_of(*fn_, locals_, owner);
      return {text, idx_.mutex_rank(r_.class_key(type), mux)};
    }
    return {text, idx_.mutex_rank(fn_->klass, mux)};
  }

  /// Token i names a guard type. Returns resume index past the
  /// declaration, or 0 when this is not a guard declaration.
  std::size_t try_guard_decl(std::size_t i) {
    const std::vector<Token>& t = *toks_;
    std::size_t j = i + 1;
    if (j < t.size() && punct(t[j], "<")) {  // template argument list
      int angle = 0;
      while (j < t.size()) {
        if (punct(t[j], "<")) ++angle;
        if (punct(t[j], ">") && --angle == 0) break;
        ++j;
      }
      ++j;
    }
    if (j >= t.size() || t[j].kind != Tk::kIdent) return 0;
    const std::string var = t[j].text;
    if (j + 1 >= t.size() ||
        !(punct(t[j + 1], "(") || punct(t[j + 1], "{"))) {
      return 0;
    }
    const bool paren = punct(t[j + 1], "(");
    const std::size_t open = j + 1;
    const std::size_t close =
        paren ? match_paren(t, open) : match_brace(t, open);
    // Comma-split the mutex list (scoped_lock takes several).
    std::size_t b = open + 1;
    int nest = 0;
    for (std::size_t k = open + 1; k <= close; ++k) {
      if (punct(t[k], "(") || punct(t[k], "{")) ++nest;
      if (punct(t[k], ")") || punct(t[k], "}")) {
        if (k != close) {
          --nest;
          continue;
        }
      }
      if ((k == close && nest == 0) || (punct(t[k], ",") && nest == 0)) {
        if (k > b) {
          auto [text, rank] = resolve_mutex(b, k);
          acquire(var, text, rank, t[i].line);
        }
        b = k + 1;
      }
    }
    return close + 1;
  }

  void handle_call(const CallSite& call) {
    const std::vector<Token>& t = *toks_;
    const int line = t[call.name_at].line;

    // Guard-variable operations: lk.unlock() / lk.lock() / cv.wait(lk).
    if (call.has_receiver && !call.receiver.empty()) {
      if (const HeldLock* g = find_guard(call.receiver)) {
        if (call.name == "unlock") {
          for (auto& h : held_) {
            if (h.guard == call.receiver) h.active = false;
          }
          return;
        }
        if (call.name == "lock") {
          for (auto& h : held_) {
            if (h.guard == call.receiver && !h.active) {
              h.active = true;
              // Re-acquisition must respect ranks vs what else is held.
              for (const HeldLock& o : held_) {
                if (!o.active || &o == &h || o.rank == -1 || h.rank == -1)
                  continue;
                if (h.rank <= o.rank) {
                  report("lock-rank", line,
                         "re-acquires '" + h.mux + "' at " +
                             rank_name(idx_, h.rank) + " while holding '" +
                             o.mux + "' at " + rank_name(idx_, o.rank));
                }
              }
            }
          }
          return;
        }
        (void)g;
      }
    }

    // Condition wait: cv.wait(lk[, ...]). Fine iff the waited guard is
    // the only lock held (wait atomically releases exactly that one).
    if (call.name == "wait" && call.has_receiver &&
        call.open + 1 < t.size() && t[call.open + 1].kind == Tk::kIdent) {
      if (const HeldLock* g = find_guard(t[call.open + 1].text)) {
        for (const HeldLock& h : held_) {
          if (h.active && h.guard != g->guard) {
            report("lock-blocking", line,
                   "condition wait releases only '" + g->mux +
                       "' but '" + h.mux + "' is also held");
          }
        }
        if (direct_ != nullptr) direct_->blocking = true;
        return;
      }
    }

    // Direct mutex lock()/unlock() (no guard object).
    if ((call.name == "lock" || call.name == "unlock") && call.has_receiver &&
        !call.receiver.empty()) {
      const std::string type = r_.type_of(*fn_, locals_, call.receiver);
      const int rank = idx_.mutex_rank(fn_->klass, call.receiver);
      if (kMutexTypes.count(type) != 0 || rank != -1) {
        if (call.name == "lock") {
          acquire("", call.receiver, rank, line);
        } else {
          std::erase_if(held_, [&](const HeldLock& h) {
            return h.guard.empty() && h.mux == call.receiver;
          });
        }
        return;
      }
    }

    // Blocking primitives.
    bool blocks = false;
    std::string what;
    if (kAlwaysBlocking.count(call.name) != 0) {
      blocks = true;
      what = "'" + call.name + "' (simulated network/queue round-trip)";
    } else if (kReceiverBlocking.count(call.name) != 0 &&
               kBlockingReceivers.count(
                   r_.class_key(call.receiver_type)) != 0) {
      blocks = true;
      what = "'" + call.receiver + "." + call.name + "' (" +
             call.receiver_type + " traffic)";
    } else if (kSleepy.count(call.name) != 0) {
      blocks = true;
      what = "'" + call.name + "'";
    }
    if (blocks) {
      if (direct_ != nullptr) direct_->blocking = true;
      report_blocking(line, what);
      return;
    }

    // Opaque callback invocation: a variable/member of std::function
    // type (or an alias of one). Checked at the call site only.
    if (!call.has_receiver && !call.qualified) {
      const std::string type = r_.type_of(*fn_, locals_, call.name);
      if (type == "function" || idx_.callable_aliases.count(type) != 0) {
        report_blocking(line, "opaque callback '" + call.name +
                                  "' (may issue blocking traffic)");
        return;
      }
    }

    // Resolved callees: record edges (pass 1) and propagate knowledge
    // (pass 2).
    const std::vector<std::size_t> callees = r_.callees(*fn_, call);
    if (callees.empty()) return;
    if (direct_ != nullptr) {
      direct_->callees.insert(direct_->callees.end(), callees.begin(),
                              callees.end());
    }
    if (fixed_ == nullptr) return;
    int callee_min = kInf;
    bool callee_blocks = false;
    for (const std::size_t c : callees) {
      callee_min = std::min(callee_min, (*fixed_)[c].min_acq);
      callee_blocks = callee_blocks || (*fixed_)[c].blocking;
    }
    if (callee_blocks) {
      report_blocking(line, "call to '" + call.name +
                                "' which blocks (directly or transitively)");
    }
    if (callee_min != kInf) {
      for (const HeldLock& h : held_) {
        if (!h.active || h.rank == -1) continue;
        if (callee_min <= h.rank) {
          report("lock-rank", line,
                 "call to '" + call.name + "' may acquire " +
                     rank_name(idx_, callee_min) + " while holding '" +
                     h.mux + "' at " + rank_name(idx_, h.rank));
        }
      }
    }
  }

  void report_blocking(int line, const std::string& what) {
    for (const HeldLock& h : held_) {
      if (!h.active) continue;
      report("lock-blocking", line,
             "blocking operation " + what + " while holding '" + h.mux + "'");
      return;  // one finding per site, against the first held lock
    }
  }

  const Resolver& r_;
  const Index& idx_;
  const std::vector<FnInfo>* fixed_;
  FnInfo* direct_;
  std::vector<Finding>* out_;
  const FunctionDef* fn_ = nullptr;
  const SourceFile* file_ = nullptr;
  const std::vector<Token>* toks_ = nullptr;
  LocalTypes locals_;
  std::vector<HeldLock> held_;
  int depth_ = 0;
};

}  // namespace

void check_locks(const Index& index, std::vector<Finding>& out) {
  const Resolver resolver(index);
  // Pass 1: per-function direct facts + call edges.
  std::vector<FnInfo> info(index.funcs.size());
  for (std::size_t i = 0; i < index.funcs.size(); ++i) {
    LockWalker walker(resolver, nullptr, &info[i], nullptr);
    walker.walk(i);
  }
  // Fixpoint: propagate min-acquired rank and may-block over edges.
  bool changed = true;
  while (changed) {
    changed = false;
    for (FnInfo& f : info) {
      for (const std::size_t c : f.callees) {
        if (info[c].min_acq < f.min_acq) {
          f.min_acq = info[c].min_acq;
          changed = true;
        }
        if (info[c].blocking && !f.blocking) {
          f.blocking = true;
          changed = true;
        }
      }
    }
  }
  // Pass 2: report with held-lock tracking.
  for (std::size_t i = 0; i < index.funcs.size(); ++i) {
    LockWalker walker(resolver, &info, nullptr, &out);
    walker.walk(i);
  }
}

}  // namespace hetsim::analyze

// Token-level rules absorbed from tools/hetsim_lint (rationale in
// DESIGN.md §7): naked-mutex, raw-thread, nondeterminism,
// float-accounting, direct-store, phase-throw, pragma-once. The old
// unchecked-reply rule is NOT ported — the flow-sensitive status-flow
// checker replaces it. Suppression filtering happens centrally in the driver (the lexer
// harvests both `hetsim-analyze: allow(...)` and the legacy
// `hetsim-lint: allow(...)` spelling).
//
// Rules apply to files under src/ (matching the paths hetsim_lint was
// run over); pragma-once also covers tools/ headers.
#include <algorithm>
#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "analyze/checkers.h"

namespace hetsim::analyze {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// `needle` in `line` delimited by non-identifier characters (':' also
/// rejected on the left so qualified names don't match their tails).
bool has_token(const std::string& line, std::string_view needle) {
  std::size_t at = 0;
  while ((at = line.find(needle, at)) != std::string::npos) {
    const bool left_ok =
        at == 0 || (!ident_char(line[at - 1]) && line[at - 1] != ':');
    const std::size_t end = at + needle.size();
    const bool right_ok = end >= line.size() || !ident_char(line[end]);
    if (left_ok && right_ok) return true;
    at += 1;
  }
  return false;
}

/// Blank string/char literals and comments, tracking /* */ across lines.
std::string strip_noise(const std::string& line, bool& in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        ++i;
      }
      out.push_back(' ');
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      out.push_back(' ');
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(' ');
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          ++i;
        } else if (line[i] == quote) {
          break;
        }
        out.push_back(' ');
        ++i;
      }
      continue;
    }
    out.push_back(c);
  }
  return out;
}

constexpr std::string_view kMutexTokens[] = {
    "std::mutex", "std::recursive_mutex", "std::timed_mutex",
    "std::recursive_timed_mutex", "std::shared_mutex",
    "std::shared_timed_mutex", "std::condition_variable"};

constexpr std::string_view kThreadTokens[] = {"std::thread", "std::jthread"};

constexpr std::string_view kNondetTokens[] = {
    "std::random_device", "rand", "srand", "drand48",
    "std::chrono::system_clock", "std::chrono::steady_clock",
    "std::chrono::high_resolution_clock", "gettimeofday", "clock_gettime",
    "timespec_get"};

/// Throwing kvstore accessors banned inside the phase-DAG runtime: a
/// store fault must surface as a typed PhaseResult the dag can retry or
/// degrade on, never as an exception unwinding through PhaseDag::run.
// Qualified spellings listed separately: has_token rejects ':' on the
// left, so "expect_ok" alone would let "kvstore::expect_ok" through.
constexpr std::string_view kPhaseThrowTokens[] = {
    "expect_ok", "kvstore::expect_ok", "UnavailableError",
    "kvstore::UnavailableError"};

constexpr std::string_view kAccountingDirs[] = {
    "src/common", "src/cluster", "src/core",     "src/energy",
    "src/estimator", "src/optimize", "src/runtime"};

bool is_header(const std::string& rel) {
  return rel.size() > 2 && rel.compare(rel.size() - 2, 2, ".h") == 0;
}

}  // namespace

void check_lint_rules(const Index& index, std::vector<Finding>& out) {
  for (const SourceFile& file : index.files) {
    const bool in_src = in_dir(file.rel, "src");
    const bool in_tools = in_dir(file.rel, "tools");
    if (!in_src && !in_tools) continue;
    if (is_header(file.rel)) {
      const bool pragma_once = std::any_of(
          file.lines.begin(), file.lines.end(), [](const std::string& l) {
            return l.find("#pragma once") != std::string::npos;
          });
      if (!pragma_once) {
        out.push_back({"pragma-once", file.rel, 1,
                       "header must carry #pragma once"});
      }
    }
    if (!in_src) continue;

    const bool mutex_rule = !in_dir(file.rel, "src/check");
    const bool thread_rule =
        !in_dir(file.rel, "src/par") && !in_dir(file.rel, "src/runtime");
    const bool float_rule =
        std::any_of(std::begin(kAccountingDirs), std::end(kAccountingDirs),
                    [&](std::string_view d) { return in_dir(file.rel, d); });
    const bool store_rule = !in_dir(file.rel, "src/kvstore") &&
                            !in_dir(file.rel, "src/ha") &&
                            !in_dir(file.rel, "src/cluster");
    const bool phase_rule = in_dir(file.rel, "src/runtime");

    bool in_block_comment = false;
    for (std::size_t n = 0; n < file.lines.size(); ++n) {
      const int line = static_cast<int>(n) + 1;
      const std::string code = strip_noise(file.lines[n], in_block_comment);
      if (mutex_rule) {
        for (const std::string_view tok : kMutexTokens) {
          if (has_token(code, tok)) {
            out.push_back(
                {"naked-mutex", file.rel, line,
                 std::string(tok) +
                     " outside src/check/ — use check::RankedMutex (+ "
                     "std::condition_variable_any) so the lock hierarchy "
                     "is enforced; par::ThreadPool shows the pattern"});
          }
        }
      }
      if (thread_rule) {
        for (const std::string_view tok : kThreadTokens) {
          if (has_token(code, tok)) {
            out.push_back(
                {"raw-thread", file.rel, line,
                 std::string(tok) +
                     " outside src/par/ and src/runtime/ — fan work out "
                     "through par::ThreadPool (deterministic chunking) or "
                     "the job runtime instead of spawning raw threads"});
          }
        }
      }
      for (const std::string_view tok : kNondetTokens) {
        if (has_token(code, tok)) {
          out.push_back(
              {"nondeterminism", file.rel, line,
               std::string(tok) +
                   " breaks the byte-identical-trace guarantee — take "
                   "seeds from common::Rng and time from the virtual "
                   "clock"});
        }
      }
      if (float_rule && has_token(code, "float")) {
        out.push_back(
            {"float-accounting", file.rel, line,
             "float in energy/time accounting — use double end to end"});
      }
      if (phase_rule) {
        for (const std::string_view tok : kPhaseThrowTokens) {
          if (has_token(code, tok)) {
            out.push_back(
                {"phase-throw", file.rel, line,
                 std::string(tok) +
                     " inside src/runtime/ — phase bodies run under the "
                     "PhaseDag fault domain; propagate store faults into "
                     "a typed PhaseResult (transient/degraded/"
                     "data_unavailable) instead of throwing"});
          }
        }
      }
      if (store_rule && (has_token(code, "kvstore::Store") ||
                         code.find(".store(") != std::string::npos ||
                         code.find("->store(") != std::string::npos)) {
        out.push_back(
            {"direct-store", file.rel, line,
             "direct kvstore::Store access outside src/kvstore/, src/ha/ "
             "and src/cluster/ — route data-plane traffic through "
             "ha::Client / ha::ShardRouter (or kvstore::Client for "
             "unreplicated paths) so replication, failover rescue, and "
             "anti-entropy repair see the operation"});
      }
    }
  }
}

}  // namespace hetsim::analyze

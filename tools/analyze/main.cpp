// hetsim_analyze — compile-commands-driven static analysis for the
// hetsim codebase: lock-order + blocking-under-lock (lock-rank,
// lock-blocking), Status/Reply consumption (status-flow), determinism
// taint (determinism-taint), plus the token-level rules absorbed from
// hetsim_lint. See DESIGN.md §11.
//
// Usage:
//   hetsim_analyze [--root <dir>] [--compile-commands <json>]
//                  [--baseline <file>] [--write-baseline <file>]
//                  [--sarif <file>] [--list-rules] [dirs...]
//   hetsim_analyze --self-test <fixture-dir> [--golden-sarif <file>]
//
// Exit codes: 0 clean, 1 findings / self-test failure, 2 usage error.
#include <iostream>
#include <string>
#include <vector>

#include "analyze/driver.h"

namespace {

int usage() {
  std::cerr
      << "usage: hetsim_analyze [--root <dir>] [--compile-commands <json>]\n"
         "                      [--baseline <file>] [--write-baseline "
         "<file>]\n"
         "                      [--sarif <file>] [--list-rules] [dirs...]\n"
         "       hetsim_analyze --self-test <fixture-dir> [--golden-sarif "
         "<file>]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  hetsim::analyze::Options opts;
  const std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto next = [&]() -> const std::string* {
      return i + 1 < args.size() ? &args[++i] : nullptr;
    };
    if (arg == "--root") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      opts.root = *v;
    } else if (arg == "--compile-commands") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      opts.compile_commands = *v;
    } else if (arg == "--baseline") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      opts.baseline = *v;
    } else if (arg == "--write-baseline") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      opts.write_baseline = *v;
    } else if (arg == "--sarif") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      opts.sarif = *v;
    } else if (arg == "--self-test") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      opts.self_test_dir = *v;
    } else if (arg == "--golden-sarif") {
      const std::string* v = next();
      if (v == nullptr) return usage();
      opts.golden_sarif = *v;
    } else if (arg == "--list-rules") {
      opts.list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "hetsim_analyze: unknown option " << arg << "\n";
      return usage();
    } else {
      opts.dirs.push_back(arg);
    }
  }
  return hetsim::analyze::run(opts);
}

// hetsim_analyze — lightweight program index: function definitions with
// body token ranges, class member/mutex declarations, callable aliases
// and the LockRank table, extracted from the token streams.
//
// This is deliberately not a full C++ front end. The extraction is a
// scope-stack walk good enough for this codebase's idiom (and for the
// fixture corpus): namespaces, classes/structs (including out-of-class
// qualified method definitions), data members, `using X =
// std::function<...>` aliases and RankedMutex declarations. Anything it
// cannot resolve it leaves unresolved — the checkers treat unresolved
// as "no knowledge", trading recall for a near-zero false-positive
// rate, which is what lets the CTest gate run warnings-as-errors.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/source.h"

namespace hetsim::analyze {

struct FunctionDef {
  int file = -1;       // index into Index::files
  std::string name;    // terminal name ("drain")
  std::string klass;   // enclosing class ("Client", "PhaseExecutor::State")
  std::string qual;    // scope-qualified ("hetsim::kvstore::Client::drain")
  std::string ret;     // return-type tokens joined by ' ' ("" for ctors)
  int line = 0;
  std::size_t params_begin = 0;  // '(' token index
  std::size_t params_end = 0;    // matching ')'
  std::size_t body_begin = 0;    // '{' token index
  std::size_t body_end = 0;      // matching '}'
};

struct MemberDecl {
  std::string type_terminal;  // last type ident ("Client", "function")
  std::string type_full;      // joined type tokens ("std :: function < ...")
};

struct Index {
  std::vector<SourceFile> files;
  std::vector<FunctionDef> funcs;
  /// terminal name -> func ids (overload sets + same-name methods).
  std::multimap<std::string, std::size_t> by_name;
  /// class -> mutex member name -> rank value.
  std::map<std::string, std::map<std::string, int>> mutexes;
  /// class -> data member name -> declared type.
  std::map<std::string, std::map<std::string, MemberDecl>> members;
  /// Names aliased to std::function via `using X = std::function<...>`.
  std::set<std::string> callable_aliases;
  /// LockRank enumerator -> value, parsed from any `enum class LockRank`
  /// in the file set (seeded with the canonical hierarchy as fallback).
  std::map<std::string, int> lock_ranks;

  /// Rank of mutex `name` as seen from class `klass` (walks to a unique
  /// cross-class match when the class has no such member). -1 = unknown.
  [[nodiscard]] int mutex_rank(const std::string& klass,
                               const std::string& name) const;

  /// Member type lookup with "" fallback.
  [[nodiscard]] const MemberDecl* member(const std::string& klass,
                                         const std::string& name) const;
};

/// Build the index over already-lexed files.
[[nodiscard]] Index build_index(std::vector<SourceFile> files);

}  // namespace hetsim::analyze
